package stack_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/costs"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/wire"
)

// node is a minimal "kernel-style" deployment of the stack for end-to-end
// tests: one host, one stack owning the whole interface.
type node struct {
	host *kern.Host
	st   *stack.Stack
	pr   *kern.Process
	prof costs.Profile
}

func newNode(s *sim.Sim, seg *simnet.Segment, name string, macLast byte, ip wire.IPAddr) *node {
	n := &node{prof: costs.DECKernelMach25()}
	n.host = kern.NewHost(s, seg, name, wire.MAC{0xde, 0xad, 0, 0, 0, macLast}, ip, n.prof)
	n.pr = n.host.NewProcess("stack")
	ep := n.host.NewEndpoint(0)
	if _, err := ep.InstallProgram(kern.CatchAllProgram(), 0); err != nil {
		panic(err)
	}
	n.st = stack.New(stack.Config{
		Sim:      s,
		Name:     name,
		LocalIP:  ip,
		LocalMAC: n.host.NIC.MAC(),
		Costs:    &n.prof.Costs,
		Charge: func(t *sim.Proc, tcp bool, comp costs.Component, nb int) {
			pc := &n.prof.Costs.UDP
			if tcp {
				pc = &n.prof.Costs.TCP
			}
			n.host.ChargeProc(t, pc[comp].At(nb))
		},
		Transmit: n.host.NIC.Transmit,
		Ports:    stack.NewLocalPorts(),
	})
	n.pr.GoDaemon("rx", func(t *sim.Proc) {
		for {
			pkt, ok := ep.Recv(t)
			if !ok {
				return
			}
			n.st.Input(t, pkt.Frame)
		}
	})
	n.st.StartTimers(n.pr.GoDaemon)
	return n
}

type world struct {
	s    *sim.Sim
	seg  *simnet.Segment
	a, b *node
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	s.Deadline = sim.Time(30 * time.Minute)
	seg := simnet.NewSegment(s)
	return &world{
		s:   s,
		seg: seg,
		a:   newNode(s, seg, "A", 1, wire.IP(10, 0, 0, 1)),
		b:   newNode(s, seg, "B", 2, wire.IP(10, 0, 0, 2)),
	}
}

func TestUDPRoundTrip(t *testing.T) {
	w := newWorld(1)
	var got []byte
	var from stack.Addr

	w.s.Spawn("server", func(p *sim.Proc) {
		s := w.b.st.NewSocket(wire.ProtoUDP)
		if err := w.b.st.Bind(s, stack.Addr{Port: 53}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 2000)
		n, f, _, err := w.b.st.Recv(p, s, buf, stack.RecvOpts{})
		_ = err
		got = buf[:n]
		from = f
		// Echo back.
		w.b.st.Send(p, s, [][]byte{got}, sendOptsTo(&f))
	})
	var reply []byte
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let the server bind
		s := w.a.st.NewSocket(wire.ProtoUDP)
		dst := stack.Addr{IP: w.b.st.LocalIP(), Port: 53}
		if _, err := w.a.st.Send(p, s, [][]byte{[]byte("ping!")}, sendOptsTo(&dst)); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 2000)
		n, _, _, err := w.a.st.Recv(p, s, buf, recvOptsNone())
		if err != nil {
			t.Error(err)
			return
		}
		reply = buf[:n]
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping!" || string(reply) != "ping!" {
		t.Fatalf("got %q reply %q", got, reply)
	}
	if from.IP != w.a.st.LocalIP() {
		t.Fatalf("source address %v", from)
	}
}

// The stack package's option structs are unexported; these helpers build
// them via the exported wrappers below.
func sendOptsTo(a *stack.Addr) stack.SendOpts { return stack.SendOpts{To: a} }
func recvOptsNone() stack.RecvOpts            { return stack.RecvOpts{} }

func TestTCPConnectTransferClose(t *testing.T) {
	w := newWorld(2)
	const total = 256 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer
	var acceptedFrom stack.Addr

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		if err := w.b.st.Bind(ls, stack.Addr{Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		if err := w.b.st.Listen(ls, 5); err != nil {
			t.Error(err)
			return
		}
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		acceptedFrom = cs.RemoteAddr()
		buf := make([]byte, 8192)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil {
				t.Errorf("server recv: %v", err)
				return
			}
			if n == 0 {
				break // EOF
			}
			received.Write(buf[:n])
		}
		w.b.st.Close(p, cs)
		w.b.st.Close(p, ls)
	})

	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		off := 0
		for off < total {
			n := 8192
			if off+n > total {
				n = total - off
			}
			wrote, err := w.a.st.Send(p, s, [][]byte{payload[off : off+n]}, stack.SendOpts{})
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			off += wrote
		}
		w.a.st.Close(p, s)
	})

	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", received.Len(), total)
	}
	if acceptedFrom.IP != w.a.st.LocalIP() {
		t.Fatalf("accept peer %v", acceptedFrom)
	}
	if w.a.st.Stats.TCPRexmit.Value() > 0 {
		t.Fatalf("unexpected retransmissions on a clean network: %d", w.a.st.Stats.TCPRexmit.Value())
	}
}

func TestTCPSurvivesPacketLoss(t *testing.T) {
	w := newWorld(3)
	w.seg.Faults().SetDefaultRates(fault.Rates{Drop: 0.05})
	const total = 64 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 5)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 8192)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				return
			}
			received.Write(buf[:n])
		}
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		// Handshake segments can be lost too; connect retries via the
		// rexmt timer.
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		off := 0
		for off < total {
			n := 4096
			if off+n > total {
				n = total - off
			}
			wrote, err := w.a.st.Send(p, s, [][]byte{payload[off : off+n]}, stack.SendOpts{})
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			off += wrote
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("stream corrupted under loss: got %d want %d bytes", received.Len(), total)
	}
	if w.a.st.Stats.TCPRexmit.Value()+w.a.st.Stats.TCPFastRexmit.Value() == 0 {
		t.Fatal("no retransmissions recorded despite 5% loss")
	}
}

func TestTCPConnectRefused(t *testing.T) {
	w := newWorld(4)
	var err error
	w.s.Spawn("client", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoTCP)
		err = w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5999})
	})
	if e := w.s.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, socketapi.ErrConnRefused) {
		t.Fatalf("err = %v, want ECONNREFUSED", err)
	}
}

func TestUDPPortUnreachable(t *testing.T) {
	w := newWorld(5)
	var recvErr error
	w.s.Spawn("client", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoUDP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5999}); err != nil {
			t.Error(err)
			return
		}
		if _, err := w.a.st.Send(p, s, [][]byte{[]byte("anyone?")}, stack.SendOpts{}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		_, _, _, recvErr = w.a.st.Recv(p, s, buf, recvOptsNone())
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, socketapi.ErrConnRefused) {
		t.Fatalf("recv err = %v, want ECONNREFUSED (from ICMP port unreachable)", recvErr)
	}
	if w.b.st.Stats.UDPNoPort.Value() == 0 || w.b.st.Stats.ICMPOut.Value() == 0 {
		t.Fatal("unreachable datagram not reported via ICMP")
	}
}

func TestARPResolutionOncePerPeer(t *testing.T) {
	w := newWorld(6)
	w.s.Spawn("client", func(p *sim.Proc) {
		s := w.a.st.NewSocket(wire.ProtoUDP)
		dst := stack.Addr{IP: w.b.st.LocalIP(), Port: 9}
		for i := 0; i < 5; i++ {
			if _, err := w.a.st.Send(p, s, [][]byte{[]byte("x")}, sendOptsTo(&dst)); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.a.st.ARP().LookupCached(w.b.st.LocalIP()); !ok {
		t.Fatal("peer not in ARP cache")
	}
	// Exactly one ARP request should have hit the wire (no per-packet ARP).
	arpFrames := 0
	_ = arpFrames
	if w.b.st.Stats.UDPIn.Value() != 5 {
		t.Fatalf("expected 5 datagrams delivered, got %d (ARP stalls?)", w.b.st.Stats.UDPIn.Value())
	}
}

func TestIPFragmentationRoundTrip(t *testing.T) {
	w := newWorld(7)
	const size = 4000 // > MTU: must fragment into 3 pieces
	var got []byte
	w.s.Spawn("server", func(p *sim.Proc) {
		s := w.b.st.NewSocket(wire.ProtoUDP)
		w.b.st.Bind(s, stack.Addr{Port: 2222})
		buf := make([]byte, 9000)
		n, _, _, err := w.b.st.Recv(p, s, buf, recvOptsNone())
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:n]
	})
	payload := make([]byte, size)
	w.s.Rand().Read(payload)
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoUDP)
		dst := stack.Addr{IP: w.b.st.LocalIP(), Port: 2222}
		if _, err := w.a.st.Send(p, s, [][]byte{payload}, sendOptsTo(&dst)); err != nil {
			t.Error(err)
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fragmented datagram corrupted (%d bytes)", len(got))
	}
	if w.a.st.Stats.IPFragsOut.Value() < 3 {
		t.Fatalf("fragments out = %d, want >= 3", w.a.st.Stats.IPFragsOut.Value())
	}
	if w.b.st.Stats.IPReasmOK.Value() != 1 {
		t.Fatalf("reassemblies = %d", w.b.st.Stats.IPReasmOK.Value())
	}
}

func TestPing(t *testing.T) {
	w := newWorld(8)
	ok := false
	w.s.Spawn("pinger", func(p *sim.Proc) {
		ok = w.a.st.Ping(p, w.b.st.LocalIP(), 42, 10)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ping failed")
	}
}

func TestZeroWindowAndResume(t *testing.T) {
	w := newWorld(9)
	const total = 64 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.SetOption(ls, socketapi.SoRcvBuf, 4096) // small window
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		// Let the sender fill the window and stall before draining.
		p.Sleep(3 * time.Second)
		buf := make([]byte, 2048)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				return
			}
			received.Write(buf[:n])
			p.Sleep(10 * time.Millisecond) // slow reader
		}
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		if _, err := w.a.st.Send(p, s, [][]byte{payload}, stack.SendOpts{}); err != nil {
			t.Errorf("send: %v", err)
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("stream corrupted through zero-window stall: %d bytes", received.Len())
	}
}

func TestMsgPeek(t *testing.T) {
	w := newWorld(10)
	w.s.Spawn("server", func(p *sim.Proc) {
		s := w.b.st.NewSocket(wire.ProtoUDP)
		w.b.st.Bind(s, stack.Addr{Port: 1111})
		buf := make([]byte, 100)
		n, _, _, _ := w.b.st.Recv(p, s, buf, stack.RecvOpts{Peek: true})
		if string(buf[:n]) != "hello" {
			t.Errorf("peek got %q", buf[:n])
		}
		n, _, _, _ = w.b.st.Recv(p, s, buf, recvOptsNone())
		if string(buf[:n]) != "hello" {
			t.Errorf("recv after peek got %q", buf[:n])
		}
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoUDP)
		dst := stack.Addr{IP: w.b.st.LocalIP(), Port: 1111}
		w.a.st.Send(p, s, [][]byte{[]byte("hello")}, sendOptsTo(&dst))
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationMidStream(t *testing.T) {
	// Establish A<->B, move B's session to a second stack instance on the
	// same host mid-transfer (the library-migration mechanism), and check
	// the stream completes intact.
	w := newWorld(11)
	const phase1, phase2 = 10000, 30000
	payload := make([]byte, phase1+phase2)
	w.s.Rand().Read(payload)
	var received bytes.Buffer
	migrated := make(chan struct{}, 1)
	_ = migrated

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for received.Len() < phase1 {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				t.Errorf("phase1 recv: n=%d err=%v", n, err)
				return
			}
			received.Write(buf[:n])
		}
		// Migrate: export from the stack and import back (round trip
		// through the serialized form, as a real migration would).
		ss, err := w.b.st.ExportTCPSession(p, cs)
		if err != nil {
			t.Errorf("export: %v", err)
			return
		}
		if ss.WireSize() <= 0 {
			t.Error("state has no wire size")
		}
		cs2 := w.b.st.ImportTCPSession(p, ss)
		for {
			n, _, _, err := w.b.st.Recv(p, cs2, buf, recvOptsNone())
			if err != nil {
				t.Errorf("phase2 recv: %v", err)
				return
			}
			if n == 0 {
				break
			}
			received.Write(buf[:n])
		}
		w.b.st.Close(p, cs2)
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		off := 0
		for off < len(payload) {
			n := 4096
			if off+n > len(payload) {
				n = len(payload) - off
			}
			wrote, err := w.a.st.Send(p, s, [][]byte{payload[off : off+n]}, stack.SendOpts{})
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			off += wrote
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("stream corrupted across migration: got %d want %d", received.Len(), len(payload))
	}
}

func TestSelectReadiness(t *testing.T) {
	w := newWorld(12)
	w.s.Spawn("main", func(p *sim.Proc) {
		us := w.b.st.NewSocket(wire.ProtoUDP)
		w.b.st.Bind(us, stack.Addr{Port: 7777})
		if us.Readable() {
			t.Error("empty socket readable")
		}
		if !us.Writable() {
			t.Error("UDP socket must be writable")
		}
		cl := w.a.st.NewSocket(wire.ProtoUDP)
		dst := stack.Addr{IP: w.b.st.LocalIP(), Port: 7777}
		w.a.st.Send(p, cl, [][]byte{[]byte("wake")}, sendOptsTo(&dst))
		p.Sleep(100 * time.Millisecond)
		if !us.Readable() {
			t.Error("socket with queued datagram not readable")
		}
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWaitThenClose(t *testing.T) {
	w := newWorld(13)
	var active *stack.Socket
	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 1)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 10)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				break
			}
		}
		w.b.st.Close(p, cs)
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		w.a.st.Send(p, s, [][]byte{[]byte("bye")}, stack.SendOpts{})
		w.a.st.Close(p, s) // active closer: must pass through TIME_WAIT
		active = s
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	// Directly after the workload, the active closer should be in
	// TIME_WAIT (or FIN_WAIT_2 if the passive FIN is still in flight).
	if err := w.s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := stack.TCPStateOf(active); st != "TIME_WAIT" {
		t.Fatalf("active closer state = %s, want TIME_WAIT", st)
	}
	// After 2MSL (60 s) the connection must be fully closed.
	if err := w.s.RunFor(70 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := stack.TCPStateOf(active); st != "CLOSED" {
		t.Fatalf("after 2MSL state = %s, want CLOSED", st)
	}
}
