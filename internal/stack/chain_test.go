package stack_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/wire"
)

// TestSendChainRetransmitCoW is the copy-on-write regression at the
// protocol level: the send queue doubles as the retransmission queue,
// so after SendChain surrenders a chain, the protocol holds references
// into storage the application can still reach through other views.
// The app scribbling over such a view — while loss forces
// retransmissions from the shared storage — must never corrupt the
// byte stream.
func TestSendChainRetransmitCoW(t *testing.T) {
	w := newWorld(77)
	w.seg.Faults().SetDefaultRates(fault.Rates{Drop: 0.05})
	const total = 64 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 5)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 8192)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil {
				t.Errorf("server recv: %v", err)
				return
			}
			if n == 0 {
				break
			}
			received.Write(buf[:n])
		}
		w.b.st.Close(p, cs)
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < total; off += 8192 {
			c := mbuf.FromBytesCopy(payload[off : off+8192])
			view := c.CopyRegion(0, c.Len()) // the app's retained view
			if _, err := w.a.st.SendChain(p, s, c, stack.SendOpts{}); err != nil {
				t.Error(err)
				view.Release()
				return
			}
			// The retransmit queue may still reference this storage;
			// copy-on-write must isolate the scribble.
			view.WriteAt(bytes.Repeat([]byte{0xee}, view.Len()), 0)
			view.Release()
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if w.a.st.Stats.TCPRexmit.Value() == 0 {
		t.Fatal("loss injected but no retransmissions: test exercises nothing")
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("stream corrupted: got %d bytes", received.Len())
	}
}

// TestStackSpliceZeroCopy forwards a stream through a splicing relay
// socket pair and asserts the relay stack moved every payload byte by
// reference: splice accounting matches the stream length and the
// socket-layer copy counter stays at zero.
func TestStackSpliceZeroCopy(t *testing.T) {
	w := newWorld(78)
	const total = 128 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer

	// Sink on A.
	w.s.Spawn("sink", func(p *sim.Proc) {
		ls := w.a.st.NewSocket(wire.ProtoTCP)
		w.a.st.Bind(ls, stack.Addr{Port: 9000})
		w.a.st.Listen(ls, 5)
		cs, err := w.a.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 8192)
		for received.Len() < total {
			n, _, _, err := w.a.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				t.Errorf("sink recv: n=%d %v", n, err)
				return
			}
			received.Write(buf[:n])
		}
	})
	// Relay on B: accept from source, connect to sink, splice.
	w.s.Spawn("relay", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 9001})
		w.b.st.Listen(ls, 5)
		src, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		dst := w.b.st.NewSocket(wire.ProtoTCP)
		if err := w.b.st.Connect(p, dst, stack.Addr{IP: w.a.st.LocalIP(), Port: 9000}); err != nil {
			t.Error(err)
			return
		}
		n, err := w.b.st.Splice(p, dst, src, total)
		if err != nil || n != total {
			t.Errorf("Splice = %d, %v", n, err)
		}
		// Per-socket accounting surfaces in the socket table.
		var spliced int64
		for _, si := range w.b.st.SocketTable() {
			spliced += si.SplicedBytes
		}
		if spliced != 2*total { // source and sink side both count
			t.Errorf("table spliced bytes = %d, want %d", spliced, 2*total)
		}
		w.b.st.Close(p, dst)
		w.b.st.Close(p, src)
	})
	// Source on A.
	w.s.Spawn("source", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 9001}); err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < total; off += 8192 {
			if _, err := w.a.st.Send(p, s, [][]byte{payload[off : off+8192]}, stack.SendOpts{}); err != nil {
				t.Error(err)
				return
			}
		}
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatal("forwarded stream corrupted")
	}
	st := &w.b.st.Stats
	if got := st.SpliceBytes.Value(); got != total {
		t.Errorf("SpliceBytes = %d, want %d", got, total)
	}
	if got := st.SpliceOps.Value(); got != 1 {
		t.Errorf("SpliceOps = %d, want 1", got)
	}
	if got := st.SockCopiedBytes.Value(); got != 0 {
		t.Errorf("relay copied %d payload bytes; splice path must copy none", got)
	}
}

// TestRecvPeekSelectiveCopyCounters checks the Libra-style accounting:
// a peeked view counts as zero-copy receive, and only the declared
// ranges count as copied bytes.
func TestRecvPeekSelectiveCopyCounters(t *testing.T) {
	w := newWorld(79)
	msg := bytes.Repeat([]byte("m"), 4096)

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5002})
		w.b.st.Listen(ls, 5)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		got := 0
		for got < len(msg) {
			view, copied, _, err := w.b.st.RecvPeek(p, cs, len(msg), []socketapi.Range{{Off: 0, Len: 32}})
			if err != nil {
				t.Error(err)
				return
			}
			n := view.Len()
			if len(copied) != 1 || len(copied[0]) != 32 {
				t.Errorf("copied ranges = %v", copied)
			}
			if err := w.b.st.RecvRelease(p, cs, n); err != nil {
				t.Error(err)
			}
			view.Release()
			got += n
		}
		st := &w.b.st.Stats
		if st.ZeroCopyRxBytes.Value() != uint64(got) {
			t.Errorf("ZeroCopyRxBytes = %d, want %d", st.ZeroCopyRxBytes.Value(), got)
		}
		if st.SelectiveCopyBytes.Value() == 0 || st.SelectiveCopyBytes.Value() != st.SockCopiedBytes.Value() {
			t.Errorf("SelectiveCopyBytes = %d, SockCopiedBytes = %d",
				st.SelectiveCopyBytes.Value(), st.SockCopiedBytes.Value())
		}
		w.b.st.Close(p, cs)
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5002}); err != nil {
			t.Error(err)
			return
		}
		w.a.st.Send(p, s, [][]byte{msg}, stack.SendOpts{})
		w.a.st.Close(p, s)
	})
	if err := w.s.Run(); err != nil {
		t.Fatal(err)
	}
}
