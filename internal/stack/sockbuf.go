package stack

import (
	"repro/internal/mbuf"
	"repro/internal/sim"
)

// streamBuf is a byte-stream socket buffer (TCP), the equivalent of a BSD
// sockbuf holding an mbuf chain.
type streamBuf struct {
	data  *mbuf.Chain
	hiwat int
	cond  sim.Cond // waiters for space (send) or data (receive)
}

func newStreamBuf(hiwat int) *streamBuf {
	return &streamBuf{data: mbuf.New(), hiwat: hiwat}
}

func (sb *streamBuf) len() int   { return sb.data.Len() }
func (sb *streamBuf) space() int { return sb.hiwat - sb.data.Len() }

// appendChain moves a chain into the buffer (sbappend).
func (sb *streamBuf) appendChain(c *mbuf.Chain) { sb.data.AppendChain(c) }

// appendBytes copies b into the buffer.
func (sb *streamBuf) appendBytes(b []byte) { sb.data.AppendBytes(b) }

// appendRef appends b without copying (NEWAPI shared-buffer send).
func (sb *streamBuf) appendRef(b []byte) { sb.data.AppendAlias(b) }

// appendAlias appends b without copying. The caller guarantees b is
// immutable (received frame bytes under the simnet ownership rules).
func (sb *streamBuf) appendAlias(b []byte) { sb.data.AppendAlias(b) }

// drop discards n bytes from the front (sbdrop; TCP acked data).
func (sb *streamBuf) drop(n int) { sb.data.TrimFront(n) }

// region returns a storage-sharing copy of bytes [off, off+n) (m_copym;
// TCP segment construction from the send queue).
func (sb *streamBuf) region(off, n int) *mbuf.Chain { return sb.data.CopyRegion(off, n) }

// regionInto appends a storage-sharing view of bytes [off, off+n) onto
// out, so a reused scratch chain makes segment construction
// allocation-free.
func (sb *streamBuf) regionInto(out *mbuf.Chain, off, n int) { sb.data.CopyRegionInto(out, off, n) }

// readInto copies up to len(p) bytes out of the buffer, consuming them.
func (sb *streamBuf) readInto(p []byte) int {
	n := sb.data.ReadAt(p, 0)
	sb.data.TrimFront(n)
	return n
}

// readChain removes and returns up to max bytes as a chain (NEWAPI
// shared-buffer receive: no copy).
func (sb *streamBuf) readChain(max int) *mbuf.Chain {
	if max >= sb.data.Len() {
		c := sb.data
		sb.data = mbuf.New()
		return c
	}
	rest := sb.data.Split(max)
	c := sb.data
	sb.data = rest
	return c
}

// datagram is one queued UDP datagram with its source address.
type datagram struct {
	from Addr
	data *mbuf.Chain
}

// dgramBuf is a datagram socket buffer: a queue of datagrams bounded by
// total byte count, like a BSD sockbuf with record boundaries.
type dgramBuf struct {
	q     []datagram
	bytes int
	hiwat int
	cond  sim.Cond
}

func newDgramBuf(hiwat int) *dgramBuf { return &dgramBuf{hiwat: hiwat} }

func (db *dgramBuf) len() int { return db.bytes }

// enqueue adds a datagram if it fits; it reports whether it was accepted
// (BSD drops the datagram and counts a full-socket error otherwise).
func (db *dgramBuf) enqueue(from Addr, data *mbuf.Chain) bool {
	if db.bytes+data.Len() > db.hiwat {
		return false
	}
	db.q = append(db.q, datagram{from: from, data: data})
	db.bytes += data.Len()
	return true
}

// dequeue removes the next datagram.
func (db *dgramBuf) dequeue() (datagram, bool) {
	if len(db.q) == 0 {
		return datagram{}, false
	}
	d := db.q[0]
	db.q = db.q[1:]
	db.bytes -= d.data.Len()
	return d, true
}

// peek returns the next datagram without consuming it.
func (db *dgramBuf) peek() (datagram, bool) {
	if len(db.q) == 0 {
		return datagram{}, false
	}
	return db.q[0], true
}
