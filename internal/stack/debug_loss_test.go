package stack_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/wire"
)

// TestDebugLoss is a diagnostic twin of TestTCPSurvivesPacketLoss that
// dumps protocol state when the transfer wedges.
func TestDebugLoss(t *testing.T) {
	w := newWorld(3)
	w.seg.Faults().SetDefaultRates(fault.Rates{Drop: 0.05})
	const total = 64 * 1024
	payload := make([]byte, total)
	w.s.Rand().Read(payload)
	var received bytes.Buffer
	var serverSock, clientSock *stack.Socket
	var sendOff int

	w.s.Spawn("server", func(p *sim.Proc) {
		ls := w.b.st.NewSocket(wire.ProtoTCP)
		w.b.st.Bind(ls, stack.Addr{Port: 5001})
		w.b.st.Listen(ls, 5)
		cs, err := w.b.st.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		serverSock = cs
		buf := make([]byte, 8192)
		for {
			n, _, _, err := w.b.st.Recv(p, cs, buf, recvOptsNone())
			if err != nil || n == 0 {
				return
			}
			received.Write(buf[:n])
		}
	})
	w.s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s := w.a.st.NewSocket(wire.ProtoTCP)
		clientSock = s
		if err := w.a.st.Connect(p, s, stack.Addr{IP: w.b.st.LocalIP(), Port: 5001}); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for sendOff < total {
			n := 4096
			if sendOff+n > total {
				n = total - sendOff
			}
			wrote, err := w.a.st.Send(p, s, [][]byte{payload[sendOff : sendOff+n]}, stack.SendOpts{})
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			sendOff += wrote
		}
		w.a.st.Close(p, s)
	})
	err := w.s.Run()
	if err != nil {
		dump := func(name string, st *stack.Stack, s *stack.Socket) string {
			state := "nil"
			if s != nil {
				state = stack.TCPStateOf(s)
			}
			return fmt.Sprintf("%s: state=%s stats=%+v", name, state, st.Stats)
		}
		t.Fatalf("wedged: %v\nsent=%d received=%d\n%s\n%s\nclient detail: %s\nserver detail: %s\nclient waiters: %s\nserver waiters: %s",
			err, sendOff, received.Len(),
			dump("client", w.a.st, clientSock), dump("server", w.b.st, serverSock),
			stack.DebugTCB(clientSock), stack.DebugTCB(serverSock),
			stack.DebugWaiters(clientSock), stack.DebugWaiters(serverSock))
		t.Logf("parked: %v", w.s.ParkedProcs())
	}
}
