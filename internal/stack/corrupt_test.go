package stack_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/wire"
)

// buildFrame assembles a full Ethernet+IPv4+transport frame addressed
// to the destination node, then lets mutate damage it after all
// checksums are computed — exactly what the wire-level fault injector
// does to a frame in flight.
func buildFrame(src, dst *node, proto uint8, transport []byte, mutate func([]byte)) []byte {
	frame := make([]byte, wire.EthHeaderLen+wire.IPv4HeaderLen+len(transport))
	eh := wire.EthHeader{Dst: dst.host.NIC.MAC(), Src: src.host.NIC.MAC(), Type: wire.EtherTypeIPv4}
	eh.Marshal(frame)
	ih := wire.IPv4Header{
		TotalLen: uint16(wire.IPv4HeaderLen + len(transport)),
		ID:       1,
		TTL:      wire.DefaultTTL,
		Proto:    proto,
		Src:      src.st.LocalIP(),
		Dst:      dst.st.LocalIP(),
	}
	ih.Marshal(frame[wire.EthHeaderLen:])
	copy(frame[wire.EthHeaderLen+wire.IPv4HeaderLen:], transport)
	if mutate != nil {
		mutate(frame)
	}
	return frame
}

func udpSegment(src, dst *node, sport, dport uint16, payload []byte) []byte {
	h := wire.UDPHeader{SrcPort: sport, DstPort: dport, Length: uint16(wire.UDPHeaderLen + len(payload))}
	hb := make([]byte, wire.UDPHeaderLen)
	h.Marshal(hb)
	h.Checksum = wire.UDPChecksum(src.st.LocalIP(), dst.st.LocalIP(), hb, payload)
	h.Marshal(hb)
	return append(hb, payload...)
}

func tcpSegment(src, dst *node, sport, dport uint16, payload []byte) []byte {
	h := wire.TCPHeader{SrcPort: sport, DstPort: dport, Seq: 1, Flags: wire.TCPAck, Window: 4096}
	seg := make([]byte, h.HeaderLen()+len(payload))
	h.Marshal(seg)
	copy(seg[h.HeaderLen():], payload)
	ck := wire.TCPChecksum(src.st.LocalIP(), dst.st.LocalIP(), seg[:h.HeaderLen()], payload)
	binary.BigEndian.PutUint16(seg[16:18], ck)
	return seg
}

// TestStackDiscardsCorruptedPackets drives damaged frames straight into
// a stack's input path and asserts each checksummed layer discards its
// own corruption and increments its own counter — and that nothing
// reaches the application.
func TestStackDiscardsCorruptedPackets(t *testing.T) {
	flipBit := func(off int, bit uint) func([]byte) {
		return func(frame []byte) { frame[off] ^= 1 << bit }
	}
	ethL, ipL := wire.EthHeaderLen, wire.IPv4HeaderLen

	cases := []struct {
		name    string
		proto   uint8
		seg     func(src, dst *node) []byte
		mutate  func([]byte)
		counter func(s *stack.Stats) uint64
	}{
		{
			name:  "ip-header-bit",
			proto: wire.ProtoUDP,
			seg:   func(a, b *node) []byte { return udpSegment(a, b, 9999, 5353, []byte("hello")) },
			// Flip a TTL bit: the IP header checksum must catch it.
			mutate:  flipBit(ethL+8, 3),
			counter: func(s *stack.Stats) uint64 { return s.IPChecksumErrors.Value() },
		},
		{
			name:  "udp-payload-bit",
			proto: wire.ProtoUDP,
			seg:   func(a, b *node) []byte { return udpSegment(a, b, 9999, 5353, []byte("hello")) },
			// Flip a payload bit: the UDP checksum must catch it.
			mutate:  flipBit(ethL+ipL+wire.UDPHeaderLen+2, 0),
			counter: func(s *stack.Stats) uint64 { return s.UDPChecksumErrors.Value() },
		},
		{
			name:  "udp-port-bit",
			proto: wire.ProtoUDP,
			seg:   func(a, b *node) []byte { return udpSegment(a, b, 9999, 5353, []byte("hello")) },
			// Flip a destination-port bit: header corruption, same discard.
			mutate:  flipBit(ethL+ipL+2, 1),
			counter: func(s *stack.Stats) uint64 { return s.UDPChecksumErrors.Value() },
		},
		{
			name:  "tcp-payload-bit",
			proto: wire.ProtoTCP,
			seg:   func(a, b *node) []byte { return tcpSegment(a, b, 9999, 5001, []byte("stream data")) },
			// Flip a payload bit: the TCP checksum must catch it.
			mutate:  flipBit(ethL+ipL+wire.TCPHeaderLen+4, 5),
			counter: func(s *stack.Stats) uint64 { return s.TCPChecksumErrors.Value() },
		},
		{
			name:  "tcp-seq-bit",
			proto: wire.ProtoTCP,
			seg:   func(a, b *node) []byte { return tcpSegment(a, b, 9999, 5001, []byte("stream data")) },
			// Flip a sequence-number bit: header corruption, same discard.
			mutate:  flipBit(ethL+ipL+5, 7),
			counter: func(s *stack.Stats) uint64 { return s.TCPChecksumErrors.Value() },
		},
		{
			name:  "icmp-type-bit",
			proto: wire.ProtoICMP,
			seg: func(a, b *node) []byte {
				h := wire.ICMPHeader{Type: wire.ICMPEchoRequest, ID: 1, Seq: 1}
				return h.Marshal([]byte("ping"))
			},
			mutate:  flipBit(ethL+ipL+0, 2),
			counter: func(s *stack.Stats) uint64 { return s.ICMPChecksumErrors.Value() },
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := newWorld(5)
			var delivered int

			// A UDP receiver that must never see the damaged datagrams.
			w.s.SpawnDaemon("victim", func(p *sim.Proc) {
				s := w.b.st.NewSocket(wire.ProtoUDP)
				w.b.st.Bind(s, stack.Addr{Port: 5353})
				buf := make([]byte, 256)
				for {
					n, _, _, err := w.b.st.Recv(p, s, buf, stack.RecvOpts{})
					if err != nil || n == 0 {
						return
					}
					delivered++
				}
			})

			w.s.Spawn("inject", func(p *sim.Proc) {
				p.Sleep(time.Millisecond)
				frame := buildFrame(w.a, w.b, c.proto, c.seg(w.a, w.b), c.mutate)
				w.b.st.Input(p, frame)
				// The same frame undamaged must parse cleanly, proving the
				// counter increment below is the mutation's doing.
				clean := buildFrame(w.a, w.b, c.proto, c.seg(w.a, w.b), nil)
				w.b.st.Input(p, clean)
			})
			if err := w.s.RunFor(50 * time.Millisecond); err != nil {
				t.Fatal(err)
			}

			st := &w.b.st.Stats
			if got := c.counter(st); got != 1 {
				t.Errorf("per-protocol checksum counter = %d, want 1 (stats %+v)", got, st)
			}
			if st.ChecksumErrors() != 1 {
				t.Errorf("aggregate ChecksumErrors = %d, want 1", st.ChecksumErrors())
			}
			if c.proto == wire.ProtoUDP && delivered != 1 {
				t.Errorf("UDP datagrams delivered = %d, want 1 (the clean one only)", delivered)
			}
		})
	}
}
