package stack

import (
	"testing"

	"repro/internal/wire"
)

func ip(a, b, c, d byte) wire.IPAddr { return wire.IPAddr{a, b, c, d} }

// TestRouteTableLookup drives the longest-prefix-match table through its
// edge cases: default routes, overlapping prefixes, host routes,
// equal-length ties, and the no-route miss that upper layers turn into
// ICMP unreachable / ErrHostUnreach.
func TestRouteTableLookup(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(ip(0, 0, 0, 0), 0, ip(10, 0, 0, 254), false)  // default via .254
	rt.Add(ip(10, 0, 0, 0), 24, wire.IPAddr{}, true)     // on-link subnet
	rt.Add(ip(10, 1, 0, 0), 16, ip(10, 0, 0, 1), false)  // aggregate via .1
	rt.Add(ip(10, 1, 2, 0), 24, ip(10, 0, 0, 2), false)  // more-specific via .2
	rt.Add(ip(10, 1, 2, 99), 32, ip(10, 0, 0, 3), false) // host route via .3
	rt.Add(ip(192, 168, 0, 7), 32, wire.IPAddr{}, true)  // on-link host route

	cases := []struct {
		name string
		dst  wire.IPAddr
		want wire.IPAddr
		ok   bool
	}{
		{"on-link subnet returns dst itself", ip(10, 0, 0, 9), ip(10, 0, 0, 9), true},
		{"aggregate /16", ip(10, 1, 9, 9), ip(10, 0, 0, 1), true},
		{"/24 beats /16", ip(10, 1, 2, 5), ip(10, 0, 0, 2), true},
		{"/32 beats /24", ip(10, 1, 2, 99), ip(10, 0, 0, 3), true},
		{"on-link host route", ip(192, 168, 0, 7), ip(192, 168, 0, 7), true},
		{"default route catches the rest", ip(8, 8, 8, 8), ip(10, 0, 0, 254), true},
		{"broadcast-ish falls to default", ip(172, 16, 0, 1), ip(10, 0, 0, 254), true},
	}
	for _, tc := range cases {
		nh, ok := rt.Lookup(tc.dst)
		if ok != tc.ok || nh != tc.want {
			t.Errorf("%s: Lookup(%v) = %v, %v; want %v, %v", tc.name, tc.dst, nh, ok, tc.want, tc.ok)
		}
	}
}

// TestRouteTableNoRoute checks the miss path: without a default route a
// non-matching destination must report no route (the host stack maps
// this to ErrHostUnreach; a router answers ICMP net-unreachable).
func TestRouteTableNoRoute(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(ip(10, 0, 0, 0), 24, wire.IPAddr{}, true)
	if nh, ok := rt.Lookup(ip(10, 99, 0, 1)); ok {
		t.Fatalf("Lookup off-table dst = %v, true; want miss", nh)
	}
	if _, ok := rt.Lookup(ip(10, 0, 1, 1)); ok {
		t.Fatal("/24 must not match the adjacent subnet")
	}
}

// TestRouteTableEqualPrefixTie: ties between equal-length prefixes go to
// the earlier Add (documented stable-sort behavior libraries rely on for
// deterministic cache contents).
func TestRouteTableEqualPrefixTie(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(ip(10, 5, 0, 0), 24, ip(10, 0, 0, 1), false)
	rt.Add(ip(10, 5, 0, 0), 24, ip(10, 0, 0, 2), false)
	if nh, _ := rt.Lookup(ip(10, 5, 0, 77)); nh != ip(10, 0, 0, 1) {
		t.Fatalf("equal-prefix tie went to %v, want first-added 10.0.0.1", nh)
	}
}

// TestRouteTableMaskedInsert: Add canonicalizes the destination with the
// prefix mask, so a sloppy "10.0.0.7/24" matches the whole /24.
func TestRouteTableMaskedInsert(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(ip(10, 0, 0, 7), 24, ip(10, 0, 0, 254), false)
	if nh, ok := rt.Lookup(ip(10, 0, 0, 200)); !ok || nh != ip(10, 0, 0, 254) {
		t.Fatalf("masked insert: got %v, %v", nh, ok)
	}
	if e := rt.Entries()[0]; e.Dest != ip(10, 0, 0, 0) {
		t.Fatalf("stored dest %v not masked", e.Dest)
	}
}

// TestRouteTableVersion: every Add bumps the version counter; the
// decomposed architecture's library caches invalidate on it.
func TestRouteTableVersion(t *testing.T) {
	rt := NewRouteTable()
	v0 := rt.Version()
	rt.Add(ip(10, 0, 0, 0), 24, wire.IPAddr{}, true)
	if rt.Version() != v0+1 {
		t.Fatalf("version %d after one Add (was %d)", rt.Version(), v0)
	}
	rt.Add(wire.IPAddr{}, 0, ip(10, 0, 0, 254), false)
	if rt.Version() != v0+2 {
		t.Fatalf("version %d after two Adds", rt.Version())
	}
}

// TestRouteTableIfindex: multi-homed owners (routers) resolve the egress
// interface through the same longest-prefix match.
func TestRouteTableIfindex(t *testing.T) {
	rt := NewRouteTable()
	rt.AddIf(ip(10, 1, 0, 0), 24, wire.IPAddr{}, true, 0)
	rt.AddIf(ip(10, 2, 0, 0), 24, wire.IPAddr{}, true, 1)
	rt.AddIf(wire.IPAddr{}, 0, ip(10, 2, 0, 254), false, 1)

	if _, ifi, _ := rt.LookupIf(ip(10, 1, 0, 5)); ifi != 0 {
		t.Fatalf("10.1/24 egress %d, want 0", ifi)
	}
	if _, ifi, _ := rt.LookupIf(ip(10, 2, 0, 5)); ifi != 1 {
		t.Fatalf("10.2/24 egress %d, want 1", ifi)
	}
	if nh, ifi, ok := rt.LookupIf(ip(4, 4, 4, 4)); !ok || ifi != 1 || nh != ip(10, 2, 0, 254) {
		t.Fatalf("default: %v if%d %v", nh, ifi, ok)
	}
}

// TestStackNextHop: the stack-level helper used by ARP call sites — the
// next hop for an off-link destination is the gateway, never the
// destination itself.
func TestStackNextHop(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(ip(10, 0, 0, 0), 24, wire.IPAddr{}, true)
	rt.Add(wire.IPAddr{}, 0, ip(10, 0, 0, 254), false)
	st := &Stack{cfg: Config{Routes: rt}}

	if nh := st.NextHop(ip(10, 0, 0, 9)); nh != ip(10, 0, 0, 9) {
		t.Fatalf("on-link next hop %v", nh)
	}
	if nh := st.NextHop(ip(8, 8, 8, 8)); nh != ip(10, 0, 0, 254) {
		t.Fatalf("routed next hop %v, want gateway", nh)
	}
}
