package stack

import (
	"bytes"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// arpEngine implements ARP for stacks that own the network interface
// directly (the in-kernel and server deployments, and the OS server of
// the decomposed architecture). Library stacks do not run ARP: the kernel
// packet filter routes ARP traffic to the OS server, and libraries
// resolve through a caching proxy (§3.3) whose cache is warmed when a
// session migrates in.
//
// Resolution never blocks: an unresolved output is queued on the cache
// entry (as BSD holds a packet in la_hold) and emitted when the reply
// arrives. This matters structurally — protocol input processing emits
// ACKs, RSTs, and ICMP errors, and must not wait for ARP traffic that it
// would itself have to process.
type arpEngine struct {
	st      *Stack
	entries map[wire.IPAddr]*arpEntry
	version int
	// OnChange, when set, fires whenever an entry is added, updated or
	// expired; the OS server uses it to invalidate library caches.
	OnChange func(ip wire.IPAddr)

	// PendingDropped counts output packets dropped because resolution
	// failed or the per-entry queue overflowed.
	PendingDropped int

	timoIPs []wire.IPAddr // timo scratch, reused across ticks
}

type arpEntry struct {
	mac      wire.MAC
	resolved bool
	ttlTicks int
	retries  int
	pending  []func(mac wire.MAC)
}

const (
	arpEntryTTLTicks  = 40 // 20 s cache lifetime (compressed for simulation)
	arpMaxRetries     = 5
	arpRetryTicks     = 2 // re-request every second
	arpMaxPendingPkts = 8
)

func newARPEngine(st *Stack) *arpEngine {
	return &arpEngine{st: st, entries: make(map[wire.IPAddr]*arpEntry)}
}

// Version increments on every table change (library cache coherence).
func (a *arpEngine) Version() int { return a.version }

// LookupCached returns a resolved entry without generating traffic.
func (a *arpEngine) LookupCached(ip wire.IPAddr) (wire.MAC, bool) {
	if e, ok := a.entries[ip]; ok && e.resolved {
		return e.mac, true
	}
	return wire.MAC{}, false
}

// Entries returns a snapshot of resolved mappings (the OS server exports
// these to library caches).
func (a *arpEngine) Entries() map[wire.IPAddr]wire.MAC {
	out := make(map[wire.IPAddr]wire.MAC)
	for ip, e := range a.entries {
		if e.resolved {
			out[ip] = e.mac
		}
	}
	return out
}

// Insert installs a static/learned mapping directly.
func (a *arpEngine) Insert(ip wire.IPAddr, mac wire.MAC) {
	a.learn(ip, mac, true)
}

// ResolveOrQueue implements Resolver.
func (a *arpEngine) ResolveOrQueue(t *sim.Proc, ip wire.IPAddr, emit func(mac wire.MAC)) (wire.MAC, bool) {
	if ip.IsBroadcast() {
		return wire.BroadcastMAC, true
	}
	if ip == a.st.cfg.LocalIP {
		return a.st.cfg.LocalMAC, true
	}
	e, ok := a.entries[ip]
	if ok && e.resolved {
		return e.mac, true
	}
	if !ok {
		e = &arpEntry{ttlTicks: arpEntryTTLTicks}
		a.entries[ip] = e
		a.sendRequest(ip)
	}
	if len(e.pending) >= arpMaxPendingPkts {
		a.PendingDropped++
		return wire.MAC{}, false
	}
	e.pending = append(e.pending, emit)
	return wire.MAC{}, false
}

func (a *arpEngine) sendRequest(ip wire.IPAddr) {
	pkt := wire.ARPPacket{
		Op:        wire.ARPRequest,
		SenderMAC: a.st.cfg.LocalMAC,
		SenderIP:  a.st.cfg.LocalIP,
		TargetIP:  ip,
	}
	a.transmit(wire.BroadcastMAC, pkt)
}

func (a *arpEngine) transmit(dst wire.MAC, pkt wire.ARPPacket) {
	frame := make([]byte, wire.EthHeaderLen+wire.ARPLen)
	eh := wire.EthHeader{Dst: dst, Src: a.st.cfg.LocalMAC, Type: wire.EtherTypeARP}
	eh.Marshal(frame)
	copy(frame[wire.EthHeaderLen:], pkt.Marshal())
	a.st.cfg.Transmit(frame)
}

// learn records a mapping and flushes any output queued on it. force
// creates the entry if absent (BSD creates entries for requests addressed
// to us, so the reply we are about to send has a warm peer entry).
func (a *arpEngine) learn(ip wire.IPAddr, mac wire.MAC, force bool) {
	e, ok := a.entries[ip]
	if !ok {
		if !force {
			return
		}
		e = &arpEntry{}
		a.entries[ip] = e
	}
	changed := !e.resolved || e.mac != mac
	e.mac = mac
	e.resolved = true
	e.ttlTicks = arpEntryTTLTicks
	e.retries = 0
	pending := e.pending
	e.pending = nil
	for _, emit := range pending {
		emit(mac)
	}
	if changed {
		a.version++
		if a.OnChange != nil {
			a.OnChange(ip)
		}
	}
}

// input processes a received ARP packet: replies to requests for our
// address and completes pending resolutions from replies (and from
// gratuitous information in requests, as BSD does).
func (a *arpEngine) input(t *sim.Proc, body []byte) {
	pkt, err := wire.UnmarshalARP(body)
	if err != nil {
		a.st.Stats.Drops.Inc()
		return
	}
	forUs := pkt.TargetIP == a.st.cfg.LocalIP
	a.learn(pkt.SenderIP, pkt.SenderMAC, forUs)
	if pkt.Op == wire.ARPRequest && forUs {
		reply := wire.ARPPacket{
			Op:        wire.ARPReply,
			SenderMAC: a.st.cfg.LocalMAC,
			SenderIP:  a.st.cfg.LocalIP,
			TargetMAC: pkt.SenderMAC,
			TargetIP:  pkt.SenderIP,
		}
		a.transmit(pkt.SenderMAC, reply)
	}
}

// timo ages cache entries and retries unresolved ones (driven by the slow
// timer). Entries are walked in address order: map order is randomized,
// and the retry broadcasts this loop sends contend for the shared
// medium, so an unordered walk would let two runs with the same seed
// send them in different orders and diverge.
func (a *arpEngine) timo(t *sim.Proc) {
	if len(a.entries) == 0 {
		return
	}
	ips := a.timoIPs[:0]
	for ip := range a.entries {
		ips = append(ips, ip)
	}
	for i := 1; i < len(ips); i++ { // allocation-free, entries are few
		for j := i; j > 0 && bytes.Compare(ips[j][:], ips[j-1][:]) < 0; j-- {
			ips[j], ips[j-1] = ips[j-1], ips[j]
		}
	}
	a.timoIPs = ips
	for _, ip := range ips {
		e := a.entries[ip]
		e.ttlTicks--
		if !e.resolved {
			if e.ttlTicks%arpRetryTicks == 0 {
				e.retries++
				if e.retries > arpMaxRetries {
					// Give up: drop whatever was waiting.
					a.PendingDropped += len(e.pending)
					delete(a.entries, ip)
					continue
				}
				a.sendRequest(ip)
			}
			continue
		}
		if e.ttlTicks <= 0 {
			delete(a.entries, ip)
			a.version++
			if a.OnChange != nil {
				a.OnChange(ip)
			}
		}
	}
}

// ARP exposes the stack's ARP engine (nil for library stacks).
func (st *Stack) ARP() *arpEngine { return st.arp }

// Routes exposes the stack's routing table.
func (st *Stack) Routes() *RouteTable { return st.cfg.Routes }

// NextHop returns the link-layer destination for dst: dst itself when
// on-link, the gateway when routed, dst when unroutable (the caller's
// ARP attempt then fails and upper layers recover).
func (st *Stack) NextHop(dst wire.IPAddr) wire.IPAddr {
	if nh, ok := st.cfg.Routes.Lookup(dst); ok {
		return nh
	}
	return dst
}

// WaitResolve resolves ip, blocking the calling thread up to timeout.
// It is safe only on threads that do not process this stack's input
// (the OS server's RPC workers use it to answer library proxy_arp calls;
// the ARP reply arrives on the server's separate input thread).
func (a *arpEngine) WaitResolve(t *sim.Proc, ip wire.IPAddr, timeout time.Duration) (wire.MAC, bool) {
	if mac, ok := a.LookupCached(ip); ok {
		return mac, true
	}
	cv := &sim.Cond{}
	if mac, ok := a.ResolveOrQueue(t, ip, func(wire.MAC) { cv.Broadcast() }); ok {
		return mac, true
	}
	cv.WaitTimeout(t, timeout)
	return a.LookupCached(ip)
}
