package stack

import (
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// SetMetrics binds the stack's counters into a registry scope (e.g.
// "host.alpha.stack.kstack"), allocates the latency histograms, and
// registers population gauges (sockets, per-TCP-state counts) that are
// evaluated only at snapshot time by walking the live socket tables —
// the netstat model of reading kernel state, with no per-transition
// bookkeeping on the hot path.
func (st *Stack) SetMetrics(sc *metrics.Scope) {
	if sc == nil {
		return
	}
	s := &st.Stats
	sc.Counter("ip_in", &s.IPIn)
	sc.Counter("ip_out", &s.IPOut)
	sc.Counter("ip_frags_out", &s.IPFragsOut)
	sc.Counter("ip_reasm_ok", &s.IPReasmOK)
	sc.Counter("ip_reasm_timeout", &s.IPReasmTimeout)
	sc.Counter("tcp_in", &s.TCPIn)
	sc.Counter("tcp_out", &s.TCPOut)
	sc.Counter("tcp_pure_acks", &s.TCPPureAcks)
	sc.Counter("tcp_rexmit", &s.TCPRexmit)
	sc.Counter("tcp_fast_rexmit", &s.TCPFastRexmit)
	sc.Counter("tcp_dup_acks", &s.TCPDupAcks)
	sc.Counter("tcp_delayed_acks", &s.TCPDelayedAcks)
	sc.Counter("udp_in", &s.UDPIn)
	sc.Counter("udp_out", &s.UDPOut)
	sc.Counter("udp_no_port", &s.UDPNoPort)
	sc.Counter("icmp_in", &s.ICMPIn)
	sc.Counter("icmp_out", &s.ICMPOut)
	sc.Counter("checksum_errors_ip", &s.IPChecksumErrors)
	sc.Counter("checksum_errors_tcp", &s.TCPChecksumErrors)
	sc.Counter("checksum_errors_udp", &s.UDPChecksumErrors)
	sc.Counter("checksum_errors_icmp", &s.ICMPChecksumErrors)
	sc.Counter("drops", &s.Drops)
	sc.Counter("sock_copied_bytes", &s.SockCopiedBytes)
	sc.Counter("sock_aliased_bytes", &s.SockAliasedBytes)
	sc.Counter("splice_ops", &s.SpliceOps)
	sc.Counter("splice_bytes", &s.SpliceBytes)
	sc.Counter("zc_rx_bytes", &s.ZeroCopyRxBytes)
	sc.Counter("selective_copy_bytes", &s.SelectiveCopyBytes)
	sc.Counter("sw_checksum_bytes", &s.SwChecksumBytes)
	sc.Counter("tso_sends", &s.TSOSends)
	sc.GaugeFunc("checksum_errors", func() int64 { return int64(s.ChecksumErrors()) })

	st.mRTT = sc.Histogram("rtt_ns")
	st.mConnect = sc.Histogram("connect_ns")
	st.mCwnd = sc.Histogram("cwnd_bytes")

	sc.GaugeFunc("sockets", func() int64 { return int64(len(st.sockets())) })
	ts := sc.Sub("tcp_state")
	for i := range tcpStateNames {
		name := strings.ToLower(tcpStateNames[i])
		state := tcpStateNames[i]
		ts.GaugeFunc(name, func() int64 {
			var n int64
			for _, sk := range st.sockets() {
				if sk.Proto == wire.ProtoTCP && TCPStateOf(sk) == state {
					n++
				}
			}
			return n
		})
	}
}

// sockets returns every live socket exactly once (a socket can appear
// in both tables only transiently, never within one event).
func (st *Stack) sockets() []*Socket {
	out := make([]*Socket, 0, len(st.conns)+len(st.binds))
	seen := make(map[uint64]bool, len(st.conns)+len(st.binds))
	for _, sk := range st.conns {
		if !seen[sk.uid] {
			seen[sk.uid] = true
			out = append(out, sk)
		}
	}
	for _, sk := range st.binds {
		if !seen[sk.uid] {
			seen[sk.uid] = true
			out = append(out, sk)
		}
	}
	return out
}

// SocketInfo is one row of the netstat-style socket table.
type SocketInfo struct {
	Stack  string `json:"stack"` // which stack instance owns the socket
	Proto  string `json:"proto"` // "tcp" or "udp"
	Local  Addr   `json:"local"`
	Remote Addr   `json:"remote"`
	State  string `json:"state"` // TCP state; "-" for UDP
	RecvQ  int    `json:"recv_q"`
	SendQ  int    `json:"send_q"`
	// Chain-API activity on this socket (lifetime byte counts).
	SplicedBytes  int64 `json:"spliced_bytes"`  // moved through Splice (as source or sink)
	ZeroCopyRx    int64 `json:"zc_rx_bytes"`    // returned as RecvPeek aliased views
	SelectiveCopy int64 `json:"sel_copy_bytes"` // materialized by CopyRanges specs
}

// SocketTable reads the live socket tables into a deterministic,
// sorted per-socket view (protocol, then local address, then remote
// address, then creation order).
func (st *Stack) SocketTable() []SocketInfo {
	socks := st.sockets()
	sort.Slice(socks, func(i, j int) bool {
		a, b := socks[i], socks[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if au, bu := a.local.IP.Uint32(), b.local.IP.Uint32(); au != bu {
			return au < bu
		}
		if a.local.Port != b.local.Port {
			return a.local.Port < b.local.Port
		}
		if au, bu := a.remote.IP.Uint32(), b.remote.IP.Uint32(); au != bu {
			return au < bu
		}
		if a.remote.Port != b.remote.Port {
			return a.remote.Port < b.remote.Port
		}
		return a.uid < b.uid
	})
	out := make([]SocketInfo, 0, len(socks))
	for _, sk := range socks {
		info := SocketInfo{
			Stack:         st.cfg.Name,
			Local:         sk.local,
			Remote:        sk.remote,
			SplicedBytes:  sk.splicedBytes,
			ZeroCopyRx:    sk.zcRxBytes,
			SelectiveCopy: sk.selCopyBytes,
		}
		switch sk.Proto {
		case wire.ProtoTCP:
			info.Proto = "tcp"
			info.State = TCPStateOf(sk)
			if sk.rcv != nil {
				info.RecvQ = sk.rcv.len()
			}
			if sk.snd != nil {
				info.SendQ = sk.snd.len()
			}
		case wire.ProtoUDP:
			info.Proto = "udp"
			info.State = "-"
			if sk.drcv != nil {
				info.RecvQ = sk.drcv.len()
			}
		}
		out = append(out, info)
	}
	return out
}
