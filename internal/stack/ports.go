package stack

import (
	"repro/internal/metrics"
	"repro/internal/socketapi"
)

// LocalPorts is a PortAllocator for a stack that owns its whole port
// namespace (the in-kernel and server baselines, and the OS server of the
// decomposed architecture, where it implements the paper's "local IP port
// manager").
type LocalPorts struct {
	inUse     map[portKey]*portState
	nextEphem uint16

	// Reserves counts successful port acquisitions (ephemeral or
	// explicit); Releases counts ports whose last reference went away.
	// At quiesce, Reserves - Releases == Active().
	Reserves metrics.Counter
	Releases metrics.Counter
}

type portKey struct {
	proto uint8
	port  uint16
}

type portState struct {
	refs  int
	reuse bool
	// quarantinedUntil blocks rebinding of ports whose connections were
	// aborted by a dying process (paper §3.2: "delay the reopening of any
	// aborted connections").
	quarantined bool
}

const (
	ephemeralFirst = 1024
	ephemeralLast  = 65535
)

// NewLocalPorts returns an empty namespace.
func NewLocalPorts() *LocalPorts {
	return &LocalPorts{inUse: make(map[portKey]*portState), nextEphem: ephemeralFirst}
}

// AllocEphemeral implements PortAllocator.
func (lp *LocalPorts) AllocEphemeral(proto uint8) (uint16, error) {
	for i := 0; i < ephemeralLast-ephemeralFirst; i++ {
		p := lp.nextEphem
		lp.nextEphem++
		if lp.nextEphem == 0 {
			lp.nextEphem = ephemeralFirst
		}
		if _, taken := lp.inUse[portKey{proto, p}]; !taken && p >= ephemeralFirst {
			lp.inUse[portKey{proto, p}] = &portState{refs: 1}
			lp.Reserves.Inc()
			return p, nil
		}
	}
	return 0, socketapi.ErrAddrNotAvail
}

// Reserve implements PortAllocator.
func (lp *LocalPorts) Reserve(proto uint8, port uint16, reuse bool) error {
	if port == 0 {
		return socketapi.ErrInvalid
	}
	k := portKey{proto, port}
	if st, taken := lp.inUse[k]; taken {
		if st.quarantined {
			return socketapi.ErrAddrInUse
		}
		if st.reuse && reuse {
			st.refs++
			lp.Reserves.Inc()
			return nil
		}
		return socketapi.ErrAddrInUse
	}
	lp.inUse[k] = &portState{refs: 1, reuse: reuse}
	lp.Reserves.Inc()
	return nil
}

// Release implements PortAllocator.
func (lp *LocalPorts) Release(proto uint8, port uint16) {
	k := portKey{proto, port}
	if st, ok := lp.inUse[k]; ok {
		st.refs--
		lp.Releases.Inc()
		if st.refs <= 0 {
			delete(lp.inUse, k)
		}
	}
}

// Quarantine blocks a port from reuse until Unquarantine (used by the OS
// server when it aborts a dead process's connections).
func (lp *LocalPorts) Quarantine(proto uint8, port uint16) {
	k := portKey{proto, port}
	if st, ok := lp.inUse[k]; ok {
		st.quarantined = true
		st.refs++ // hold it
		return
	}
	lp.inUse[k] = &portState{refs: 1, quarantined: true}
}

// Unquarantine lifts a quarantine.
func (lp *LocalPorts) Unquarantine(proto uint8, port uint16) {
	k := portKey{proto, port}
	if st, ok := lp.inUse[k]; ok && st.quarantined {
		st.quarantined = false
		st.refs--
		if st.refs <= 0 {
			delete(lp.inUse, k)
		}
	}
}

// InUse reports whether a port is currently reserved.
func (lp *LocalPorts) InUse(proto uint8, port uint16) bool {
	_, ok := lp.inUse[portKey{proto, port}]
	return ok
}

// Active returns the number of reserved ports (including quarantined
// ones), for the ports-in-use gauge.
func (lp *LocalPorts) Active() int { return len(lp.inUse) }
