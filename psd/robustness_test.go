package psd_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/psd"
)

// TestRobustnessMatrix is the deployment-level torture matrix: every
// protocol architecture — in-kernel, user-level server, and the paper's
// decomposed library — must deliver a byte-identical stream under loss,
// duplication, reordering, and a mid-transfer partition that heals.
// This is the paper's credibility requirement: the library stack may
// only be called equivalent to the in-kernel one if it survives the
// same hostile network.
func TestRobustnessMatrix(t *testing.T) {
	archs := []struct {
		name string
		a    psd.Arch
	}{
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
		{"library", psd.Decomposed()},
	}
	faults := []struct {
		name  string
		rates fault.Rates
		plan  string
	}{
		{"loss5", fault.Rates{Drop: 0.05}, ""},
		{"dup5", fault.Rates{Dup: 0.05}, ""},
		{"reorder10", fault.Rates{Reorder: 0.10, ReorderBy: 3 * time.Millisecond}, ""},
		{"partheal", fault.Rates{}, "@20ms partition a|b for=400ms"},
	}
	for _, ac := range archs {
		for _, fc := range faults {
			ac, fc := ac, fc
			t.Run(ac.name+"/"+fc.name, func(t *testing.T) {
				runRobustTransfer(t, ac.a, fc.rates, fc.plan)
			})
		}
	}
}

func runRobustTransfer(t *testing.T, arch psd.Arch, rates fault.Rates, plan string) {
	t.Helper()
	n := psd.New(31)
	n.Faults().SetDefaultRates(rates)
	if plan != "" {
		if err := n.ApplyFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	a := n.Host("a", "10.0.0.1", arch)
	b := n.Host("b", "10.0.0.2", arch)

	const total = 32 * 1024
	payload := make([]byte, total)
	n.Sim().Rand().Read(payload)
	var got bytes.Buffer

	srv := b.NewApp("sink")
	n.Spawn("sink", func(p *psd.Thread) {
		ls, _ := srv.Socket(p, psd.SockStream)
		srv.Bind(p, ls, psd.SockAddr{Port: 9})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			nr, err := srv.Recv(p, fd, buf, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if nr == 0 {
				return
			}
			got.Write(buf[:nr])
		}
	})
	cli := a.NewApp("src")
	n.Spawn("src", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockStream)
		if err := cli.Connect(p, fd, b.Addr(9)); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for sent := 0; sent < total; {
			end := sent + 4096
			if end > total {
				end = total
			}
			nw, err := cli.Send(p, fd, payload[sent:end], 0)
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			sent += nw
		}
		cli.Close(p, fd)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("stream not byte-identical: got %d bytes, want %d", got.Len(), total)
	}
	// The named faults must actually have fired (a vacuous pass here
	// would mean the injector is wired to the wrong links).
	c := n.Faults().TotalCounters()
	switch {
	case rates.Drop > 0 && c.Dropped == 0:
		t.Fatalf("no frames dropped: %+v", c)
	case rates.Dup > 0 && c.Duplicated == 0:
		t.Fatalf("no frames duplicated: %+v", c)
	case rates.Reorder > 0 && c.Reordered == 0:
		t.Fatalf("no frames reordered: %+v", c)
	case plan != "" && c.PartDrops == 0:
		t.Fatalf("partition never cut a delivery: %+v", c)
	}
}
