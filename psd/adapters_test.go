package psd_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/psd"
)

// TestAdapterStackAcrossArchitectures runs the same composed protocol —
// compression model over checksum inspection over length-prefix framing
// over TCP — on every architecture. The adapters are built purely on
// the chain interface, so the composition works wherever ChainApp does.
func TestAdapterStackAcrossArchitectures(t *testing.T) {
	archs := []struct {
		name string
		a    psd.Arch
	}{
		{"decomposed", psd.Decomposed()},
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
	}
	msgs := [][]byte{
		[]byte("first"),
		bytes.Repeat([]byte("second-message-"), 400), // spans many segments
		{}, // empty frame
		[]byte("last"),
	}
	for _, ac := range archs {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			n := psd.New(21)
			hostA := n.Host("a", "10.0.0.1", ac.a)
			hostB := n.Host("b", "10.0.0.2", ac.a)
			srv := hostB.NewApp("msgsrv")
			cli := hostA.NewApp("msgcli")
			var srvCk, cliCk psd.ChecksumInspector

			n.Spawn("server", func(p *psd.Thread) {
				lfd, _ := srv.Socket(p, psd.SockStream)
				srv.Bind(p, lfd, psd.SockAddr{Port: 4321})
				srv.Listen(p, lfd, 4)
				cfd, _, err := srv.Accept(p, lfd)
				if err != nil {
					t.Error(err)
					return
				}
				srvCk.Port = psd.NewFramer(srv, cfd)
				port := &psd.CompressionModel{Port: &srvCk, Ratio: 0.6, PerByte: 10 * time.Nanosecond}
				// Echo every frame back by reference until EOF.
				for {
					m, err := port.RecvMsg(p)
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Error(err)
						return
					}
					if err := port.SendMsg(p, m); err != nil {
						t.Error(err)
						return
					}
				}
				srv.Close(p, cfd)
				srv.Close(p, lfd)
			})
			n.Spawn("client", func(p *psd.Thread) {
				p.Sleep(time.Millisecond)
				fd, _ := cli.Socket(p, psd.SockStream)
				if err := cli.Connect(p, fd, hostB.Addr(4321)); err != nil {
					t.Error(err)
					return
				}
				cliCk.Port = psd.NewFramer(cli, fd)
				port := &psd.CompressionModel{Port: &cliCk, Ratio: 0.6, PerByte: 10 * time.Nanosecond}
				for _, want := range msgs {
					if err := port.SendMsg(p, psd.ChainOf(want)); err != nil {
						t.Error(err)
						return
					}
					m, err := port.RecvMsg(p)
					if err != nil {
						t.Error(err)
						return
					}
					got := make([]byte, m.Len())
					m.ReadAt(got, 0)
					m.Release()
					if !bytes.Equal(got, want) {
						t.Errorf("echo mismatch: got %d bytes, want %d", len(got), len(want))
					}
				}
				cli.Close(p, fd)
			})
			if err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if srvCk.RecvdMsgs != len(msgs) || cliCk.RecvdMsgs != len(msgs) {
				t.Fatalf("inspector counts: srv %d cli %d", srvCk.RecvdMsgs, cliCk.RecvdMsgs)
			}
			// The same bytes crossed both inspectors; the last sums must
			// agree in both directions.
			if srvCk.LastRecvd != cliCk.LastSent || cliCk.LastRecvd != srvCk.LastSent {
				t.Fatalf("checksums disagree: srv(%04x/%04x) cli(%04x/%04x)",
					srvCk.LastSent, srvCk.LastRecvd, cliCk.LastSent, cliCk.LastRecvd)
			}
		})
	}
}

// TestAdapterCostsCalibrated checks the profile-derived adapter
// charges: they are positive, the offload profile prices user-space
// adapter work identically to the plain library profile (the engine
// only moved the kernel's checksum, not the application's), and when a
// calibrated stack runs with metrics enabled the charges land in the
// registry with the exact values the calibration predicts.
func TestAdapterCostsCalibrated(t *testing.T) {
	ac := psd.AdapterCostsFor(psd.Decomposed())
	if ac.FramerPerMsg <= 0 || ac.ChecksumPerByte <= 0 || ac.CompressPerByte <= 0 {
		t.Fatalf("calibrated costs not positive: %+v", ac)
	}
	if off := psd.AdapterCostsFor(psd.DecomposedOffload()); off != ac {
		t.Fatalf("offload profile prices adapters differently: %+v vs %+v", off, ac)
	}

	n := psd.NewConfig(psd.Config{Seed: 29, Metrics: true})
	hostA := n.Host("a", "10.0.0.1", psd.Decomposed())
	hostB := n.Host("b", "10.0.0.2", psd.Decomposed())
	srv := hostB.NewApp("caliserv")
	cli := hostA.NewApp("calicli")

	msgs := [][]byte{
		bytes.Repeat([]byte("x"), 2000),
		bytes.Repeat([]byte("y"), 5000),
		[]byte("tail"),
	}
	var totalBytes int
	for _, m := range msgs {
		totalBytes += len(m)
	}

	var cliFr *psd.Framer
	var cliCk psd.ChecksumInspector
	var cliCm psd.CompressionModel

	n.Spawn("server", func(p *psd.Thread) {
		lfd, _ := srv.Socket(p, psd.SockStream)
		srv.Bind(p, lfd, psd.SockAddr{Port: 4323})
		srv.Listen(p, lfd, 4)
		cfd, _, err := srv.Accept(p, lfd)
		if err != nil {
			t.Error(err)
			return
		}
		port := psd.NewFramer(srv, cfd).Calibrate(ac)
		for {
			m, err := port.RecvMsg(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.SendMsg(p, m); err != nil {
				t.Error(err)
				return
			}
		}
		srv.Close(p, cfd)
		srv.Close(p, lfd)
	})
	n.Spawn("client", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockStream)
		if err := cli.Connect(p, fd, hostB.Addr(4323)); err != nil {
			t.Error(err)
			return
		}
		cliFr = psd.NewFramer(cli, fd).Calibrate(ac)
		cliFr.BindMetrics(n.Metrics().Scope("host.a.app.calicli.framer"))
		cliCk.Port = cliFr
		cliCk.Calibrate(ac).BindMetrics(n.Metrics().Scope("host.a.app.calicli.cksum"))
		cliCm.Port = &cliCk
		cliCm.Ratio = 0.6
		cliCm.Calibrate(ac).BindMetrics(n.Metrics().Scope("host.a.app.calicli.compress"))
		for _, want := range msgs {
			if err := cliCm.SendMsg(p, psd.ChainOf(want)); err != nil {
				t.Error(err)
				return
			}
			m, err := cliCm.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			m.Release()
		}
		cli.Close(p, fd)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}

	// Every message crossed the client framer twice (send + echo), and
	// every payload byte crossed the inspector and the model twice.
	snap := n.MetricsSnapshot()
	get := func(name string) int64 {
		it, ok := snap.Get(name)
		if !ok {
			t.Fatalf("%s missing from the metrics registry", name)
		}
		return it.Value
	}
	wantFramer := int64(2*len(msgs)) * int64(ac.FramerPerMsg)
	if v := get("host.a.app.calicli.framer.charged_ns"); v != wantFramer {
		t.Errorf("framer charged %d ns, calibration predicts %d", v, wantFramer)
	}
	wantCk := int64(2*totalBytes) * int64(ac.ChecksumPerByte)
	if v := get("host.a.app.calicli.cksum.charged_ns"); v != wantCk {
		t.Errorf("inspector charged %d ns, calibration predicts %d", v, wantCk)
	}
	wantCm := int64(2*totalBytes) * int64(ac.CompressPerByte)
	if v := get("host.a.app.calicli.compress.charged_ns"); v != wantCm {
		t.Errorf("compression model charged %d ns, calibration predicts %d", v, wantCm)
	}
}

// TestFramerSplitFrames drives the slow path: frames arriving split
// across many small sends must reassemble by reference.
func TestFramerSplitFrames(t *testing.T) {
	n := psd.New(23)
	hostA := n.Host("a", "10.0.0.1", psd.Decomposed())
	hostB := n.Host("b", "10.0.0.2", psd.Decomposed())
	srv := hostB.NewApp("frag")
	cli := hostA.NewApp("fragcli")
	payload := bytes.Repeat([]byte("z"), 3000)
	var got []byte

	n.Spawn("server", func(p *psd.Thread) {
		lfd, _ := srv.Socket(p, psd.SockStream)
		srv.Bind(p, lfd, psd.SockAddr{Port: 4322})
		srv.Listen(p, lfd, 4)
		cfd, _, err := srv.Accept(p, lfd)
		if err != nil {
			t.Error(err)
			return
		}
		fr := psd.NewFramer(srv, cfd)
		m, err := fr.RecvMsg(p)
		if err != nil {
			t.Error(err)
			return
		}
		got = make([]byte, m.Len())
		m.ReadAt(got, 0)
		m.Release()
		srv.Close(p, cfd)
		srv.Close(p, lfd)
	})
	n.Spawn("client", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockStream)
		if err := cli.Connect(p, fd, hostB.Addr(4322)); err != nil {
			t.Error(err)
			return
		}
		// Hand-build the frame and dribble it out in small writes with
		// pauses so the receiver sees partial frames.
		frame := append([]byte{0, 0, byte(len(payload) >> 8), byte(len(payload))}, payload...)
		for off := 0; off < len(frame); off += 100 {
			end := off + 100
			if end > len(frame) {
				end = len(frame)
			}
			if _, err := cli.Send(p, fd, frame[off:end], 0); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(200 * time.Microsecond)
		}
		cli.Close(p, fd)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes", len(got))
	}
}
