package psd_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/psd"
)

// tracedTransfer runs a small client->server TCP transfer (connect, send
// total bytes, close both ways) on the given architecture with the given
// trace layers enabled, and returns the finished network.
func tracedTransfer(t *testing.T, arch psd.Arch, seed int64, plan string, total int, layers ...psd.TraceLayer) *psd.Network {
	t.Helper()
	n := psd.NewConfig(psd.Config{Seed: seed, Trace: layers})
	if plan != "" {
		if err := n.ApplyFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	a := n.Host("a", "10.0.0.1", arch)
	b := n.Host("b", "10.0.0.2", arch)
	t.Cleanup(func() { dumpTraceOnFailure(t, n) })

	srv := b.NewApp("sink")
	n.Spawn("sink", func(p *psd.Thread) {
		ls, _ := srv.Socket(p, psd.SockStream)
		srv.Bind(p, ls, psd.SockAddr{Port: 9})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		got := 0
		for {
			nr, err := srv.Recv(p, fd, buf, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if nr == 0 {
				break
			}
			got += nr
		}
		if got != total {
			t.Errorf("sink got %d of %d bytes", got, total)
		}
		srv.Close(p, fd)
		srv.Close(p, ls)
	})

	cli := a.NewApp("source")
	n.Spawn("source", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockStream)
		if err := cli.Connect(p, fd, b.Addr(9)); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		payload := make([]byte, total)
		if _, err := cli.Send(p, fd, payload, 0); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		cli.Close(p, fd)
	})

	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// Run ends when the app threads exit; drain the protocol timers so
	// the tail of the FIN handshake (TIME_WAIT entry) is on the trace.
	if err := n.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	return n
}

// dumpTraceOnFailure writes a failing test's trace as text and pcap
// into $PSD_TRACE_DIR, so CI can upload the artifacts for post-mortem
// inspection in an editor or Wireshark.
func dumpTraceOnFailure(t *testing.T, n *psd.Network) {
	dir := os.Getenv("PSD_TRACE_DIR")
	if dir == "" || !t.Failed() || n.Trace() == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("trace dump: %v", err)
		return
	}
	base := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_"))
	for _, out := range []struct {
		path  string
		write func(io.Writer) error
	}{
		{base + ".txt", n.Trace().WriteText},
		{base + ".pcap", n.Trace().WritePcap},
	} {
		f, err := os.Create(out.path)
		if err == nil {
			err = out.write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			t.Logf("trace dump: %v", err)
			return
		}
	}
	t.Logf("trace artifacts written to %s.{txt,pcap}", base)
}

var traceArchs = []struct {
	name string
	a    func() psd.Arch
}{
	{"inkernel", psd.InKernel},
	{"server", psd.ServerBased},
	{"library", psd.Decomposed},
}

// TestTraceHandshakeOracle asserts the full TCP three-way handshake as
// an ordered event sequence — SYN sent after SYN_SENT, SYN|ACK after the
// passive open reaches SYN_RCVD, ESTABLISHED on the client before its
// first data segment — on every protocol architecture. This is the
// paper's compatibility claim expressed at the event level rather than
// as end-state byte counts.
func TestTraceHandshakeOracle(t *testing.T) {
	for _, ac := range traceArchs {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			n := tracedTransfer(t, ac.a(), 5, "", 4096, psd.TraceNet, psd.TraceStack)
			recs := n.Trace().Records()
			err := trace.Expect(recs,
				trace.Want{Event: trace.EvTCPState, Host: "a", Contains: "-> SYN_SENT"},
				trace.Want{Event: trace.EvFrameTx, Host: "a", Contains: "[SYN]"},
				trace.Want{Event: trace.EvTCPState, Host: "b", Contains: "-> SYN_RCVD"},
				trace.Want{Event: trace.EvFrameTx, Host: "b", Contains: "[SYN|ACK]"},
				trace.Want{Event: trace.EvTCPState, Host: "a", Contains: "SYN_SENT -> ESTABLISHED"},
				trace.Want{Event: trace.EvFrameTx, Host: "a", Contains: "len=1460"},
			)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceTeardownOracle asserts the FIN teardown ordering: the active
// closer enters FIN_WAIT_1 and sends a FIN, the passive side passes
// through CLOSE_WAIT and LAST_ACK, and the active side ends in
// TIME_WAIT — again on all three architectures.
func TestTraceTeardownOracle(t *testing.T) {
	for _, ac := range traceArchs {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			n := tracedTransfer(t, ac.a(), 5, "", 4096, psd.TraceNet, psd.TraceStack)
			recs := n.Trace().Records()
			err := trace.Expect(recs,
				trace.Want{Event: trace.EvTCPState, Host: "a", Contains: "-> FIN_WAIT_1"},
				// The FIN may ride on the final data segment (FIN|PSH|ACK).
				trace.Want{Event: trace.EvFrameTx, Host: "a", Contains: "FIN"},
				trace.Want{Event: trace.EvTCPState, Host: "b", Contains: "-> CLOSE_WAIT"},
				trace.Want{Event: trace.EvTCPState, Host: "b", Contains: "-> LAST_ACK"},
				trace.Want{Event: trace.EvTCPState, Host: "a", Contains: "-> TIME_WAIT"},
			)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceRexmitAfterDrop takes the link down mid-transfer with a fault
// plan and asserts the recovery ordering: a frame dropped with "down"
// attribution, then an RTO retransmission, then a successful data frame
// — and that the transfer still completes (checked inside the helper).
func TestTraceRexmitAfterDrop(t *testing.T) {
	n := tracedTransfer(t, psd.Decomposed(), 9, "@15ms down a for=1500ms", 32*1024,
		psd.TraceNet, psd.TraceStack)
	recs := n.Trace().Records()
	err := trace.Expect(recs,
		trace.Want{Event: trace.EvFrameDrop, Host: "a", Contains: "down"},
		trace.Want{Event: trace.EvTCPRexmit, Host: "a", Contains: "rexmit(rto)"},
		trace.Want{Event: trace.EvFrameTx, Host: "a", Contains: "len=1460"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if c := trace.Count(recs, trace.Want{Event: trace.EvTCPRexmit}); c == 0 {
		t.Fatal("no retransmissions recorded during a 1.5s outage")
	}
}

// TestTraceDeterminism runs the same seeded workload twice and requires
// byte-identical text and pcap exports: the recorder must not perturb
// the simulation, and its own output must be reproducible. Run with
// -count=2 in CI to also catch cross-process nondeterminism.
func TestTraceDeterminism(t *testing.T) {
	render := func() (text, pcap []byte) {
		n := tracedTransfer(t, psd.Decomposed(), 17, "", 16*1024,
			psd.TraceNet, psd.TraceStack, psd.TraceCore)
		var tb, pb bytes.Buffer
		if err := n.Trace().WriteText(&tb); err != nil {
			t.Fatal(err)
		}
		if err := n.Trace().WritePcap(&pb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), pb.Bytes()
	}
	t1, p1 := render()
	t2, p2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("text export differs between identical seeded runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("pcap export differs between identical seeded runs")
	}
}

// TestTracePcapRoundTrip exports a run to pcap, re-parses every frame
// with the wire decoders, and checks the file against the live trace:
// same frame count, same virtual timestamps, same bytes, and intact
// IPv4/TCP/UDP checksums.
func TestTracePcapRoundTrip(t *testing.T) {
	n := tracedTransfer(t, psd.Decomposed(), 23, "", 8*1024, psd.TraceNet)
	rec := n.Trace()

	var pb bytes.Buffer
	if err := rec.WritePcap(&pb); err != nil {
		t.Fatal(err)
	}
	pkts, err := trace.ReadPcap(&pb)
	if err != nil {
		t.Fatal(err)
	}
	txs := trace.Find(rec.Records(), trace.Want{Event: trace.EvFrameTx})
	if len(pkts) != len(txs) {
		t.Fatalf("pcap has %d frames, trace has %d tx records", len(pkts), len(txs))
	}
	for i, pkt := range pkts {
		rec := txs[i]
		if pkt.At != rec.At {
			t.Fatalf("frame %d: pcap timestamp %v != trace %v", i, pkt.At, rec.At)
		}
		if !bytes.Equal(pkt.Data, rec.Frame) {
			t.Fatalf("frame %d: pcap bytes differ from trace", i)
		}
		eh, err := wire.UnmarshalEth(pkt.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if eh.Type != wire.EtherTypeIPv4 {
			continue
		}
		ih, hl, err := wire.UnmarshalIPv4(pkt.Data[wire.EthHeaderLen:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if sum := wire.Checksum(pkt.Data[wire.EthHeaderLen : wire.EthHeaderLen+hl]); sum != 0 {
			t.Fatalf("frame %d: IPv4 header checksum does not verify (sum=%#x)", i, sum)
		}
		if ih.IsFragment() {
			continue
		}
		body := pkt.Data[wire.EthHeaderLen+hl : wire.EthHeaderLen+int(ih.TotalLen)]
		switch ih.Proto {
		case wire.ProtoTCP:
			if !wire.VerifyTCPChecksum(ih.Src, ih.Dst, body) {
				t.Fatalf("frame %d: TCP checksum does not verify", i)
			}
		case wire.ProtoUDP:
			if !wire.VerifyUDPChecksum(ih.Src, ih.Dst, body) {
				t.Fatalf("frame %d: UDP checksum does not verify", i)
			}
		}
	}
}

// TestTracePerturbation compares the virtual end time of a traced run
// against the identical untraced run. Tracing is passive — it charges no
// virtual time and schedules nothing — so the budget here (2%) is a
// regression tripwire; today the difference is exactly zero.
func TestTracePerturbation(t *testing.T) {
	endTime := func(layers ...psd.TraceLayer) time.Duration {
		n := tracedTransfer(t, psd.Decomposed(), 29, "", 16*1024, layers...)
		return n.Now()
	}
	off := endTime()
	on := endTime(psd.TraceSim, psd.TraceNet, psd.TraceFilter, psd.TraceStack, psd.TraceCore)
	diff := on - off
	if diff < 0 {
		diff = -diff
	}
	if off == 0 || float64(diff)/float64(off) > 0.02 {
		t.Fatalf("tracing perturbed virtual time: untraced %v, traced %v", off, on)
	}
}
