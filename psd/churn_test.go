package psd_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/psd"
)

// smallChurn is a quick configuration for the determinism and
// architecture-coverage tests.
func smallChurn(seed int64, arch psd.Arch) psd.ChurnConfig {
	return psd.ChurnConfig{
		Seed:           seed,
		Servers:        2,
		Clients:        8,
		ConnsPerClient: 5,
		OrphanEvery:    4,
		MsgBytes:       256,
		Arch:           arch,
		Drain:          75 * time.Second,
	}
}

// TestChurnSmall runs a small churn on each architecture. The
// conservation checks only apply where an OS server tracks sessions
// (the decomposed architecture); on the baselines the workload must
// simply complete and leave no TIME_WAIT residue.
func TestChurnSmall(t *testing.T) {
	rep, err := psd.RunChurn(smallChurn(1, psd.Decomposed()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Error(err)
	}
	if rep.OrphansAborted == 0 {
		t.Error("no orphans aborted; the orphan path did not run")
	}
	if want := int64(2 * rep.ConnsPlan); rep.ConnSetups != want {
		t.Errorf("conn setups = %d, want %d (both ends of every planned conn)", rep.ConnSetups, want)
	}
}

func TestChurnBaselineArchitectures(t *testing.T) {
	for _, tc := range []struct {
		name string
		arch psd.Arch
	}{
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallChurn(1, tc.arch)
			cfg.OrphanEvery = 0 // orphan abort is a decomposed-architecture feature
			rep, err := psd.RunChurn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TimeWait != 0 {
				t.Errorf("TIME_WAIT residue after drain = %d", rep.TimeWait)
			}
		})
	}
}

// TestChurnDeterminism asserts the headline reproducibility property:
// two runs with the same seed produce byte-identical JSON registry
// snapshots, on every architecture. Run with -count=2 in CI so the
// property also holds across process invocations.
func TestChurnDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		arch psd.Arch
	}{
		{"decomposed", psd.Decomposed()},
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			render := func() []byte {
				cfg := smallChurn(7, tc.arch)
				if tc.name != "decomposed" {
					cfg.OrphanEvery = 0
				}
				rep, err := psd.RunChurn(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := metrics.WriteJSON(&buf, *rep.Snapshot); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := render(), render()
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different snapshots:\n--- run 1 ---\n%.2000s\n--- run 2 ---\n%.2000s", a, b)
			}
		})
	}
}

// TestChurnFullScale is the acceptance-scale run: >= 2,000 connections
// across >= 100 hosts, one in eight clients orphaned, verified entirely
// through registry values.
func TestChurnFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale churn skipped with -short")
	}
	rep, err := psd.RunChurn(psd.DefaultChurn(42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hosts < 100 {
		t.Fatalf("hosts = %d, want >= 100", rep.Hosts)
	}
	if rep.ConnsPlan < 2000 {
		t.Fatalf("planned conns = %d, want >= 2000", rep.ConnsPlan)
	}
	if err := rep.Check(); err != nil {
		t.Error(err)
	}
	if rep.OrphansAborted == 0 {
		t.Error("no orphans aborted at scale")
	}
	t.Logf("churn: %d hosts, %d conns, %d setups, %d teardowns, %d orphans",
		rep.Hosts, rep.ConnsPlan, rep.ConnSetups, rep.ConnTeardowns, rep.OrphansAborted)
}
