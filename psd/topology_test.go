package psd_test

import (
	"bytes"
	"testing"
	"time"

	"repro/psd"
)

func TestParseCIDR(t *testing.T) {
	ip, plen, err := psd.ParseCIDR("10.1.0.7/24")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.1.0.0" || plen != 24 {
		t.Fatalf("ParseCIDR = %v/%d, want masked 10.1.0.0/24", ip, plen)
	}
	for _, bad := range []string{"", "10.1.0.0", "10.1.0.0/33", "10.1.0.0/-1", "x/24", "10.1.0.0/x"} {
		if _, _, err := psd.ParseCIDR(bad); err == nil {
			t.Errorf("ParseCIDR(%q) accepted", bad)
		}
	}
}

// TestRoutedTCPAcrossArchitectures proves the multi-subnet topology API
// end to end: a TCP connection between hosts on different subnets,
// forwarded by a router, on every architecture.
func TestRoutedTCPAcrossArchitectures(t *testing.T) {
	archs := []struct {
		name string
		a    psd.Arch
	}{
		{"decomposed", psd.Decomposed()},
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
	}
	for _, ac := range archs {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			n := psd.NewConfig(psd.Config{Seed: 42, Metrics: true})
			west := n.NewSubnet("west", "10.1.0.0/24")
			east := n.NewSubnet("east", "10.2.0.0/24")
			n.NewRouter("core").Attach(west, "10.1.0.254").Attach(east, "10.2.0.254")

			hostA := west.Host("a", "10.1.0.1", ac.a)
			hostB := east.Host("b", "10.2.0.1", ac.a)
			if gw, ok := west.Gateway(); !ok || gw.String() != "10.1.0.254" {
				t.Fatalf("west gateway = %v, %v", gw, ok)
			}

			srv := hostB.NewApp("echo")
			n.Spawn("echo", func(p *psd.Thread) {
				fd, err := srv.Socket(p, psd.SockStream)
				if err != nil {
					t.Error(err)
					return
				}
				if err := srv.Bind(p, fd, psd.SockAddr{Port: 7}); err != nil {
					t.Error(err)
					return
				}
				if err := srv.Listen(p, fd, 4); err != nil {
					t.Error(err)
					return
				}
				cfd, _, err := srv.Accept(p, fd)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				nr, err := srv.Recv(p, cfd, buf, 0)
				if err != nil {
					t.Error(err)
					return
				}
				srv.Send(p, cfd, buf[:nr], 0)
				srv.Close(p, cfd)
				srv.Close(p, fd)
			})

			cli := hostA.NewApp("cli")
			var got []byte
			n.Spawn("cli", func(p *psd.Thread) {
				p.Sleep(time.Millisecond)
				fd, err := cli.Socket(p, psd.SockStream)
				if err != nil {
					t.Error(err)
					return
				}
				if err := cli.Connect(p, fd, hostB.Addr(7)); err != nil {
					t.Error(err)
					return
				}
				if _, err := cli.Send(p, fd, []byte("over the hill"), 0); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				nr, err := cli.Recv(p, fd, buf, 0)
				if err != nil {
					t.Error(err)
					return
				}
				got = buf[:nr]
				cli.Close(p, fd)
			})

			if err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("over the hill")) {
				t.Fatalf("routed echo = %q", got)
			}
			// The router really forwarded: both directions crossed it.
			r := n.Routers()[0]
			if f := r.Stats().Forwarded.Value(); f < 4 {
				t.Fatalf("router forwarded %d frames, want >= 4", f)
			}
			// Router metrics landed in the shared registry.
			snap := n.MetricsSnapshot()
			if uint64(snap.Sum("router.core.forwarded")) != r.Stats().Forwarded.Value() {
				t.Fatalf("registry forwarded mismatch")
			}
		})
	}
}

// TestRoutedUDPMultiHop chains two routers over a transit subnet and
// exercises static inter-router routes in both directions.
func TestRoutedUDPMultiHop(t *testing.T) {
	n := psd.New(7)
	west := n.NewSubnet("west", "10.1.0.0/24")
	mid := n.NewSubnet("mid", "10.9.0.0/24")
	east := n.NewSubnet("east", "10.2.0.0/24")

	r1 := n.NewRouter("r1").Attach(west, "10.1.0.254").Attach(mid, "10.9.0.1")
	r2 := n.NewRouter("r2").Attach(east, "10.2.0.254").Attach(mid, "10.9.0.2")
	if err := r1.AddRoute("10.2.0.0/24", "10.9.0.2"); err != nil {
		t.Fatal(err)
	}
	if err := r2.AddRoute("10.1.0.0/24", "10.9.0.1"); err != nil {
		t.Fatal(err)
	}

	hostA := west.Host("a", "10.1.0.1", psd.Decomposed())
	hostB := east.Host("b", "10.2.0.1", psd.Decomposed())

	srv := hostB.NewApp("echo")
	n.Spawn("echo", func(p *psd.Thread) {
		fd, _ := srv.Socket(p, psd.SockDgram)
		if err := srv.Bind(p, fd, psd.SockAddr{Port: 7}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 256)
		nr, from, err := srv.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		srv.SendTo(p, fd, buf[:nr], 0, from)
	})

	cli := hostA.NewApp("cli")
	var got []byte
	n.Spawn("cli", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockDgram)
		if _, err := cli.SendTo(p, fd, []byte("two hops"), 0, hostB.Addr(7)); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 256)
		nr, _, err := cli.RecvFrom(p, fd, buf, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:nr]
	})

	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("two hops")) {
		t.Fatalf("multi-hop echo = %q", got)
	}
	if r1.Stats().Forwarded.Value() == 0 || r2.Stats().Forwarded.Value() == 0 {
		t.Fatalf("both routers should forward: r1=%d r2=%d",
			r1.Stats().Forwarded.Value(), r2.Stats().Forwarded.Value())
	}
}

func TestSubnetAddressValidation(t *testing.T) {
	n := psd.New(1)
	s := n.NewSubnet("west", "10.1.0.0/24")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("host off-subnet", func() { s.Host("x", "10.2.0.1", psd.InKernel()) })
	mustPanic("router off-subnet", func() { n.NewRouter("r").Attach(s, "10.2.0.254") })
	mustPanic("bad cidr", func() { n.NewSubnet("bad", "10.0.0.0") })
}
