package psd

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/costs"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Composable protocol adapters in the dsock style: each adapter is a
// single-feature protocol object that layers one concern — framing,
// inspection, a modeled transform — over a message port, and adapters
// stack in any order. They are built entirely on the chain interface
// (SendChain / RecvPeek / RecvRelease), so a stack of adapters adds
// protocol function without adding data copies: payloads move by
// reference from the application through every adapter into the
// protocol, and back.

// MsgPort is the composition surface: a bidirectional port carrying
// delimited messages as buffer chains. SendMsg surrenders ownership of
// the chain; RecvMsg transfers ownership to the caller (the caller
// releases it or sends it onward).
type MsgPort interface {
	SendMsg(t *Thread, c *Chain) error
	RecvMsg(t *Thread) (*Chain, error)
}

// AdapterCosts are the calibrated virtual-time charges for the protocol
// adapters, derived from an architecture's cost profile so a composed
// user-space stage is priced with the same tables as the kernel stages
// it displaces.
type AdapterCosts struct {
	// FramerPerMsg is charged once per framed message each way: the
	// copy-slope cost of materializing and parsing the 4-byte header.
	FramerPerMsg time.Duration
	// ChecksumPerByte prices the inspector's software in_cksum pass: the
	// checksum share of the profile's fused copy+checksum slope.
	ChecksumPerByte time.Duration
	// CompressPerByte prices the modeled compressor's byte scan — the
	// same load+add inner loop as the checksum pass.
	CompressPerByte time.Duration
}

// AdapterCostsFor derives adapter charges from an architecture's cost
// profile. The anchor is the per-byte slope of transport input (the
// paper's fused copy+checksum loop): its checksum share prices the
// byte-scan stages, its copy share prices header materialization. On an
// offload profile the software slope has already had the checksum share
// removed — the engine does that work — so the full-loop slope is
// recovered first and every architecture prices adapter work alike.
func AdapterCostsFor(a Arch) AdapterCosts {
	slope := a.prof.Costs.TCP[costs.CompTransportInput].PerByteNS
	if a.prof.Offload.Enabled {
		slope /= 1 - costs.SWChecksumShare
	}
	scan := time.Duration(slope * costs.SWChecksumShare)
	return AdapterCosts{
		FramerPerMsg:    time.Duration(slope*(1-costs.SWChecksumShare)) * frameHdrLen,
		ChecksumPerByte: scan,
		CompressPerByte: scan,
	}
}

// frameHdrLen is the length-prefix framing header: a 4-byte big-endian
// payload length.
const frameHdrLen = 4

// maxFrame bounds a frame's payload so a corrupt header cannot demand
// an absurd allocation.
const maxFrame = 1 << 24

// Framer layers length-prefix message delimiting over a connected TCP
// stream. Sending prepends the 4-byte header into the chain's leading
// space (no copy of the payload); receiving uses RecvPeek with a
// selective-copy range that materializes only the header, leaving the
// payload aliased to protocol storage.
type Framer struct {
	API ChainApp
	FD  int

	// PerMsg, when set (see AdapterCostsFor), is charged as virtual time
	// on the calling thread once per message framed or unframed.
	PerMsg time.Duration

	Msgs      metrics.Counter // messages framed plus messages unframed
	ChargedNS metrics.Counter // virtual ns charged on calling threads

	// pending holds consumed-but-undelivered stream bytes when a frame
	// arrives split across segments.
	pending *Chain
}

// NewFramer frames messages over the connected stream fd of app, which
// must provide the chain interface.
func NewFramer(app App, fd int) *Framer {
	c, ok := ChainOps(app)
	if !ok {
		panic("psd: app does not provide the chain interface")
	}
	return &Framer{API: c, FD: fd}
}

// Calibrate applies the profile-derived per-message charge and returns
// the framer for chaining.
func (f *Framer) Calibrate(ac AdapterCosts) *Framer {
	f.PerMsg = ac.FramerPerMsg
	return f
}

// BindMetrics registers the framer's counters under a scope.
func (f *Framer) BindMetrics(sc *MetricsScope) {
	if sc == nil {
		return
	}
	sc.Counter("msgs", &f.Msgs)
	sc.Counter("charged_ns", &f.ChargedNS)
}

// charge accounts one framed or unframed message.
func (f *Framer) charge(t *Thread) {
	f.Msgs.Inc()
	if f.PerMsg > 0 {
		f.ChargedNS.Add(uint64(f.PerMsg))
		t.Sleep(f.PerMsg)
	}
}

// SendMsg writes one length-delimited frame. The header is prepended
// in place; the payload chain is surrendered by reference.
func (f *Framer) SendMsg(t *Thread, c *Chain) error {
	if c == nil {
		c = NewChain()
	}
	n := c.Len()
	if n > maxFrame {
		c.Release()
		return fmt.Errorf("psd: frame payload %d exceeds %d", n, maxFrame)
	}
	f.charge(t)
	hdr := c.Prepend(frameHdrLen)
	binary.BigEndian.PutUint32(hdr, uint32(n))
	_, err := f.API.SendChain(t, f.FD, c, 0)
	return err
}

// RecvMsg reads one frame and returns its payload as a chain aliasing
// protocol receive storage. Only the 4 header bytes are ever
// materialized; the payload is never flattened. Returns io.EOF at a
// clean end of stream between frames, io.ErrUnexpectedEOF inside one.
func (f *Framer) RecvMsg(t *Thread) (*Chain, error) {
	if f.pending == nil {
		f.pending = NewChain()
	}
	if f.pending.Len() == 0 {
		// Fast path: the receive queue already holds a whole frame. One
		// peek materializes the header (selective copy) and the payload
		// is carved out of the aliased view.
		view, err := f.API.RecvPeek(t, f.FD, 0, []Range{{Off: 0, Len: frameHdrLen}})
		if err != nil {
			return nil, err
		}
		got := view.Chain.Len()
		if got == 0 {
			view.Chain.Release()
			return nil, io.EOF
		}
		if got >= frameHdrLen {
			n := int(binary.BigEndian.Uint32(view.Copied[0]))
			if n > maxFrame {
				view.Chain.Release()
				return nil, fmt.Errorf("psd: frame header claims %d bytes", n)
			}
			if got >= frameHdrLen+n {
				view.Chain.TrimBack(got - (frameHdrLen + n))
				view.Chain.TrimFront(frameHdrLen)
				if err := f.API.RecvRelease(t, f.FD, frameHdrLen+n); err != nil {
					view.Chain.Release()
					return nil, err
				}
				f.charge(t)
				return view.Chain, nil
			}
		}
		// Partial frame: consume what we saw and assemble below.
		if err := f.API.RecvRelease(t, f.FD, got); err != nil {
			view.Chain.Release()
			return nil, err
		}
		f.pending.AppendChain(view.Chain)
		view.Chain.Release()
	}
	for f.pending.Len() < frameHdrLen {
		if err := f.fill(t); err != nil {
			return nil, err
		}
	}
	var hdr [frameHdrLen]byte
	f.pending.ReadAt(hdr[:], 0)
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("psd: frame header claims %d bytes", n)
	}
	for f.pending.Len() < frameHdrLen+n {
		if err := f.fill(t); err != nil {
			return nil, err
		}
	}
	f.pending.TrimFront(frameHdrLen)
	msg := f.pending
	f.pending = msg.Split(n)
	f.charge(t)
	return msg, nil
}

// fill consumes whatever the receive queue holds into pending, by
// reference, blocking for at least one byte.
func (f *Framer) fill(t *Thread) error {
	view, err := f.API.RecvPeek(t, f.FD, 0, nil)
	if err != nil {
		return err
	}
	got := view.Chain.Len()
	if got == 0 {
		view.Chain.Release()
		return io.ErrUnexpectedEOF // stream ended mid-frame
	}
	if err := f.API.RecvRelease(t, f.FD, got); err != nil {
		view.Chain.Release()
		return err
	}
	f.pending.AppendChain(view.Chain)
	view.Chain.Release()
	return nil
}

// ChecksumInspector layers checksum-only inspection over a message
// port: every message passing in either direction is summed with the
// Internet checksum directly from the chain — segment by segment, no
// flattening, no copy — the way a verifying middlebox or protocol
// trailer stage would. The payload passes through untouched.
type ChecksumInspector struct {
	Port MsgPort

	// PerByte, when set (see AdapterCostsFor), charges the software
	// checksum pass as virtual time on the calling thread.
	PerByte time.Duration

	SentMsgs, RecvdMsgs   int
	SentBytes, RecvdBytes int
	LastSent, LastRecvd   uint16 // checksum of the most recent message each way

	ChargedNS metrics.Counter // virtual ns charged on calling threads
}

// Calibrate applies the profile-derived per-byte charge and returns the
// inspector for chaining.
func (ci *ChecksumInspector) Calibrate(ac AdapterCosts) *ChecksumInspector {
	ci.PerByte = ac.ChecksumPerByte
	return ci
}

// BindMetrics registers the inspector's counters under a scope.
func (ci *ChecksumInspector) BindMetrics(sc *MetricsScope) {
	if sc == nil {
		return
	}
	sc.Counter("charged_ns", &ci.ChargedNS)
}

// charge accounts the checksum pass over n bytes.
func (ci *ChecksumInspector) charge(t *Thread, n int) {
	if ci.PerByte > 0 && n > 0 {
		d := time.Duration(n) * ci.PerByte
		ci.ChargedNS.Add(uint64(d))
		t.Sleep(d)
	}
}

// SendMsg checksums the outgoing message and passes it down.
func (ci *ChecksumInspector) SendMsg(t *Thread, c *Chain) error {
	var ck wire.Checksummer
	ck.AddChain(c)
	ci.LastSent = ck.Sum()
	ci.SentMsgs++
	ci.SentBytes += c.Len()
	ci.charge(t, c.Len())
	return ci.Port.SendMsg(t, c)
}

// RecvMsg receives a message, checksums it, and passes it up.
func (ci *ChecksumInspector) RecvMsg(t *Thread) (*Chain, error) {
	c, err := ci.Port.RecvMsg(t)
	if err != nil {
		return nil, err
	}
	var ck wire.Checksummer
	ck.AddChain(c)
	ci.LastRecvd = ck.Sum()
	ci.RecvdMsgs++
	ci.RecvdBytes += c.Len()
	ci.charge(t, c.Len())
	return c, nil
}

// CompressionModel layers the cost model of a compression stage over a
// message port: it charges virtual CPU time proportional to the bytes
// scanned and accounts the wire bytes a real compressor at Ratio would
// have produced, without transforming the payload. It answers the
// sizing question — does compression pay at this link speed and CPU
// cost? — composably, the same way the cost tables price the copyin
// and checksum stages.
type CompressionModel struct {
	Port MsgPort

	// Ratio is the modeled compressed/original size (0.6 = 40% saved).
	Ratio float64
	// PerByte is the modeled CPU cost of scanning one byte, charged as
	// virtual time on the calling thread in both directions.
	PerByte time.Duration

	// BytesIn counts payload bytes through the stage; BytesModeled is
	// what they would have become on the wire at Ratio.
	BytesIn, BytesModeled int

	ChargedNS metrics.Counter // virtual ns charged on calling threads
}

// Calibrate applies the profile-derived per-byte scan charge and
// returns the model for chaining.
func (cm *CompressionModel) Calibrate(ac AdapterCosts) *CompressionModel {
	cm.PerByte = ac.CompressPerByte
	return cm
}

// BindMetrics registers the model's counters under a scope.
func (cm *CompressionModel) BindMetrics(sc *MetricsScope) {
	if sc == nil {
		return
	}
	sc.Counter("charged_ns", &cm.ChargedNS)
}

func (cm *CompressionModel) charge(t *Thread, n int) {
	if cm.PerByte > 0 && n > 0 {
		d := time.Duration(n) * cm.PerByte
		cm.ChargedNS.Add(uint64(d))
		t.Sleep(d)
	}
	cm.BytesIn += n
	cm.BytesModeled += int(float64(n) * cm.Ratio)
}

// SendMsg models compressing the message, then passes it down.
func (cm *CompressionModel) SendMsg(t *Thread, c *Chain) error {
	cm.charge(t, c.Len())
	return cm.Port.SendMsg(t, c)
}

// RecvMsg receives a message and models decompressing it.
func (cm *CompressionModel) RecvMsg(t *Thread) (*Chain, error) {
	c, err := cm.Port.RecvMsg(t)
	if err != nil {
		return nil, err
	}
	cm.charge(t, c.Len())
	return c, nil
}
