package psd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/trace"
)

// cityDigest runs a city and reduces it to a byte string that any
// equivalent run must reproduce exactly: the full merged trace, the
// metrics snapshot (minus its wall-clock-free but stop-time-dependent
// At stamp), the conservation quantities, the trunk frame ledgers, and
// the total event count. Per-shard and per-window quantities are
// deliberately excluded — they describe the execution, not the
// simulation.
func cityDigest(t *testing.T, cfg CityConfig) string {
	t.Helper()
	cfg.Trace = []TraceLayer{TraceNet, TraceStack, TraceCore, TraceFilter}
	rep, err := RunCity(cfg)
	if err != nil {
		t.Fatalf("RunCity(shards=%d single=%v): %v", cfg.Shards, cfg.SingleThreaded, err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("conservation (shards=%d single=%v): %v", cfg.Shards, cfg.SingleThreaded, err)
	}
	var b bytes.Buffer
	if err := trace.WriteText(&b, rep.Trace.Records()); err != nil {
		t.Fatal(err)
	}
	items, err := json.Marshal(rep.Snapshot.Items)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(items)
	laws, err := json.Marshal(rep.Churn)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(laws)
	trunks, err := json.Marshal(rep.Trunks)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(trunks)
	fmt.Fprintf(&b, "dispatched=%d", rep.DispatchedTotal)
	return b.String()
}

// diffDigest reports the first line where two digests diverge, so a
// determinism break points at a specific trace record instead of a
// megabyte blob.
func diffDigest(t *testing.T, label, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("%s: digests diverge at line %d:\n  a: %s\n  b: %s", label, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s: digests diverge in length: %d vs %d lines", label, len(la), len(lb))
}

// TestCityConservation is the RunCity acceptance gate at test scale:
// the districted workload completes and every conservation law holds,
// classic and sharded.
func TestCityConservation(t *testing.T) {
	for _, shards := range []int{0, 2} {
		rep, err := RunCity(DefaultCity(1, shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Churn.OrphansAborted == 0 {
			t.Fatalf("shards=%d: no orphans aborted; OrphanEvery did not bite", shards)
		}
		// DefaultCity plans cross-district connections, so an idle trunk
		// means the routing (or the cross pattern) silently broke.
		for _, d := range rep.Trunks {
			if d.Sent == 0 {
				t.Fatalf("shards=%d: trunk %s carried no traffic", shards, d.Name)
			}
		}
	}
}

// TestCitySerialParallelIdentical is the tentpole oracle: the same
// sharded city run serially and on worker goroutines produces byte-
// identical traces, metrics, and ledgers. Run with -count=2 it also
// proves run-to-run determinism of each mode.
func TestCitySerialParallelIdentical(t *testing.T) {
	cfg := DefaultCity(42, 3)
	cfg.SingleThreaded = true
	serial := cityDigest(t, cfg)
	cfg.SingleThreaded = false
	parallel := cityDigest(t, cfg)
	diffDigest(t, "serial vs parallel", serial, parallel)
}

// TestCityShardCountInvariance pins the reshard guarantee: 1, 2, 8,
// and NumCPU shards — including counts above the district count, which
// leave shards empty — all reproduce the single-shard reference
// schedule exactly.
func TestCityShardCountInvariance(t *testing.T) {
	ref := cityDigest(t, DefaultCity(7, 1))
	counts := []int{2, 8, runtime.NumCPU()}
	if testing.Short() {
		counts = []int{2, 8}
	}
	for _, k := range counts {
		cfg := DefaultCity(7, k)
		diffDigest(t, fmt.Sprintf("shards=1 vs shards=%d", k), ref, cityDigest(t, cfg))
	}
}

// TestCityClassicGroupLawsAgree checks the group scheduler against the
// classic single loop on the same topology: the metrics registry and
// every conservation quantity agree item for item (the trace is
// organized differently — lanes — so it is compared only within group
// mode).
func TestCityClassicGroupLawsAgree(t *testing.T) {
	classic, err := RunCity(DefaultCity(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := RunCity(DefaultCity(9, 2))
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(classic.Snapshot.Items)
	gj, _ := json.Marshal(grouped.Snapshot.Items)
	diffDigest(t, "classic vs group registry", string(cj), string(gj))
	if classic.DispatchedTotal != grouped.DispatchedTotal {
		t.Fatalf("dispatched: classic %d, group %d", classic.DispatchedTotal, grouped.DispatchedTotal)
	}
}

// TestCityPropertyRandomTopologies is the property test: random
// topology shapes and seeds, each run serially and in parallel, must
// match byte for byte. The shapes come from a fixed meta-seed so
// failures reproduce.
func TestCityPropertyRandomTopologies(t *testing.T) {
	iters := 4
	if testing.Short() {
		iters = 2
	}
	meta := rand.New(rand.NewSource(20260808))
	for it := 0; it < iters; it++ {
		cfg := CityConfig{
			Seed:               meta.Int63(),
			Districts:          1 + meta.Intn(4),
			ServersPerDistrict: 1 + meta.Intn(2),
			ClientsPerDistrict: 1 + meta.Intn(4),
			ConnsPerClient:     1 + meta.Intn(3),
			CrossEvery:         meta.Intn(3),
			OrphanEvery:        meta.Intn(2) * 5,
			MsgBytes:           64 + meta.Intn(3)*192,
			Arch:               Decomposed(),
			TrunkProp:          time.Duration(1+meta.Intn(5)) * 500 * time.Microsecond,
		}
		cfg.Shards = 1 + meta.Intn(cfg.Districts+2)
		label := fmt.Sprintf("iter %d (seed=%d districts=%d shards=%d)", it, cfg.Seed, cfg.Districts, cfg.Shards)
		cfg.SingleThreaded = true
		serial := cityDigest(t, cfg)
		cfg.SingleThreaded = false
		parallel := cityDigest(t, cfg)
		diffDigest(t, label, serial, parallel)
	}
}

// TestChurnDistricted covers the ChurnConfig delegation: the classic
// churn laws hold on the districted, sharded build.
func TestChurnDistricted(t *testing.T) {
	rep, err := RunChurn(ChurnConfig{
		Seed:           3,
		Servers:        4,
		Clients:        12,
		ConnsPerClient: 4,
		OrphanEvery:    6,
		MsgBytes:       256,
		Arch:           Decomposed(),
		Districts:      2,
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Hosts != 16 {
		t.Fatalf("hosts = %d, want 16", rep.Hosts)
	}
}

// TestChurnShardsRequireDistricts pins the error path: a flat segment
// cannot be cut into shards.
func TestChurnShardsRequireDistricts(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{Seed: 1, Servers: 1, Clients: 1, ConnsPerClient: 1, Shards: 2}); err == nil {
		t.Fatal("RunChurn with Shards but no Districts did not fail")
	}
}
