package psd

import (
	"fmt"
	"time"
)

// ChurnConfig parameterizes the connection-churn scale workload: many
// hosts opening and closing thousands of short-lived TCP connections,
// with a fraction of clients dying without cleanup so the OS servers'
// orphan-abort machinery runs at scale. Acceptance is expressed
// entirely in metrics-registry assertions (see ChurnReport.Check).
type ChurnConfig struct {
	Seed           int64
	Servers        int // echo-server hosts
	Clients        int // client hosts
	ConnsPerClient int // sequential connections per client
	OrphanEvery    int // every Nth client exits without closing its last conn (0 = none)
	MsgBytes       int // payload echoed once per connection
	Arch           Arch
	Drain          time.Duration // virtual time after the workload for TIME_WAIT and port quarantines to expire (0 = 75 s)

	// Districts, when positive, splits the hosts evenly across that
	// many routed districts joined by trunks (the RunCity topology) —
	// the form that scales past 10^4 hosts, since a single shared
	// segment is one collision domain and one shard. Servers and
	// Clients must divide evenly by it. Zero keeps the classic flat
	// single-segment build, byte-identical to prior releases.
	Districts int

	// Shards and SingleThreaded forward to Config; they require
	// Districts > 0 (a flat segment cannot be cut).
	Shards         int
	SingleThreaded bool
}

// DefaultChurn is the scale point the acceptance criteria call for:
// 2,016 connections across 106 hosts, one in eight clients orphaned.
func DefaultChurn(seed int64) ChurnConfig {
	return ChurnConfig{
		Seed:           seed,
		Servers:        10,
		Clients:        96,
		ConnsPerClient: 21,
		OrphanEvery:    8,
		MsgBytes:       512,
		Arch:           Decomposed(),
	}
}

// ChurnReport is the registry-derived outcome of a churn run.
type ChurnReport struct {
	Hosts     int `json:"hosts"`
	ConnsPlan int `json:"conns_planned"`

	// Summed over every host's OS-server scope.
	ConnSetups     int64 `json:"conn_setups"`
	ConnTeardowns  int64 `json:"conn_teardowns"`
	OrphansAborted int64 `json:"orphans_aborted"`
	SessionsMade   int64 `json:"sessions_made"`
	SessionsReaped int64 `json:"sessions_reaped"`

	// Residue at drain; every field must be zero.
	LiveSessions int64 `json:"live_sessions"`
	PortsInUse   int64 `json:"ports_in_use"`
	TimeWait     int64 `json:"time_wait"`

	Snapshot *MetricsSnapshot `json:"-"`
}

// Check verifies the workload's conservation laws against the registry:
// every connection established was either torn down normally or orphan-
// aborted, every session record was reaped, and no port, session, or
// TIME_WAIT socket leaked through the churn.
func (r *ChurnReport) Check() error {
	// Each logical connection is set up on both the client's and the
	// server's OS server, so the global count is 2x the plan.
	if want := int64(2 * r.ConnsPlan); r.ConnSetups < want {
		return fmt.Errorf("churn: %d connection setups, want >= %d", r.ConnSetups, want)
	}
	if r.ConnSetups != r.ConnTeardowns+r.OrphansAborted {
		return fmt.Errorf("churn: setups %d != teardowns %d + orphans aborted %d",
			r.ConnSetups, r.ConnTeardowns, r.OrphansAborted)
	}
	if r.SessionsMade != r.SessionsReaped {
		return fmt.Errorf("churn: sessions made %d != reaped %d", r.SessionsMade, r.SessionsReaped)
	}
	if r.LiveSessions != 0 {
		return fmt.Errorf("churn: %d sessions leaked", r.LiveSessions)
	}
	if r.PortsInUse != 0 {
		return fmt.Errorf("churn: %d ports leaked", r.PortsInUse)
	}
	if r.TimeWait != 0 {
		return fmt.Errorf("churn: %d sockets stuck in TIME_WAIT after drain", r.TimeWait)
	}
	return nil
}

const churnPort = 5001

// RunChurn builds the network, runs the workload to completion plus the
// drain period, and reads the registry into a report. Deterministic for
// a given config: two runs with the same seed produce byte-identical
// snapshots.
func RunChurn(cfg ChurnConfig) (*ChurnReport, error) {
	if cfg.Districts > 0 {
		return runChurnDistricted(cfg)
	}
	if cfg.Shards > 0 {
		return nil, fmt.Errorf("churn: Shards requires Districts (a flat segment is one shard)")
	}
	if cfg.MsgBytes <= 0 {
		cfg.MsgBytes = 512
	}
	if cfg.Drain <= 0 {
		// 2MSL TIME_WAIT (60 s) and the orphan port quarantine (60 s)
		// both expire within this window.
		cfg.Drain = 75 * time.Second
	}
	n := NewConfig(Config{Seed: cfg.Seed, Metrics: true})

	// Servers at 10.0.1.x, clients at 10.0.2.x/10.0.3.x.
	servers := make([]*Host, cfg.Servers)
	for i := range servers {
		servers[i] = n.Host(fmt.Sprintf("srv%d", i), fmt.Sprintf("10.0.1.%d", i+1), cfg.Arch)
	}
	clients := make([]*Host, cfg.Clients)
	for j := range clients {
		clients[j] = n.Host(fmt.Sprintf("cli%d", j), fmt.Sprintf("10.0.%d.%d", 2+j/200, j%200+1), cfg.Arch)
	}

	// Every client walks the server list round-robin from its own
	// offset, so each server's expected accept count is known up front.
	expect := make([]int, cfg.Servers)
	for j := 0; j < cfg.Clients; j++ {
		for k := 0; k < cfg.ConnsPerClient; k++ {
			expect[(j+k)%cfg.Servers]++
		}
	}

	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	for i, h := range servers {
		i, h := i, h
		app := h.NewApp("echo")
		n.Spawn(fmt.Sprintf("srv%d", i), func(t *Thread) {
			ls, err := app.Socket(t, SockStream)
			if err != nil {
				fail(err)
				return
			}
			if err := app.Bind(t, ls, SockAddr{Port: churnPort}); err != nil {
				fail(err)
				return
			}
			app.Listen(t, ls, 64)
			buf := make([]byte, cfg.MsgBytes)
			for served := 0; served < expect[i]; served++ {
				fd, _, err := app.Accept(t, ls)
				if err != nil {
					fail(err)
					return
				}
				got := 0
				for got < cfg.MsgBytes {
					n, err := app.Recv(t, fd, buf[got:], 0)
					if err != nil || n == 0 {
						break // client died mid-stream; still count it served
					}
					got += n
				}
				if got == cfg.MsgBytes {
					if _, err := app.Send(t, fd, buf, 0); err != nil {
						fail(err)
					}
				}
				app.Close(t, fd)
			}
			app.Close(t, ls)
		})
	}

	msg := make([]byte, cfg.MsgBytes)
	for b := range msg {
		msg[b] = byte(b)
	}
	for j, h := range clients {
		j := j
		orphan := cfg.OrphanEvery > 0 && (j+1)%cfg.OrphanEvery == 0
		app := h.NewApp("churn")
		n.Spawn(fmt.Sprintf("cli%d", j), func(t *Thread) {
			// Stagger starts so the SYN burst stays inside listen backlogs.
			t.Sleep(time.Duration(j) * 3 * time.Millisecond)
			for k := 0; k < cfg.ConnsPerClient; k++ {
				srv := servers[(j+k)%cfg.Servers]
				fd, err := app.Socket(t, SockStream)
				if err != nil {
					fail(err)
					return
				}
				if err := app.Connect(t, fd, srv.Addr(churnPort)); err != nil {
					fail(fmt.Errorf("cli%d conn %d: %w", j, k, err))
					return
				}
				if _, err := app.Send(t, fd, msg, 0); err != nil {
					fail(err)
					return
				}
				buf := make([]byte, cfg.MsgBytes)
				got := 0
				for got < cfg.MsgBytes {
					n, err := app.Recv(t, fd, buf[got:], 0)
					if err != nil {
						fail(err)
						return
					}
					if n == 0 {
						fail(fmt.Errorf("cli%d conn %d: premature EOF", j, k))
						return
					}
					got += n
				}
				if orphan && k == cfg.ConnsPerClient-1 {
					// Die with the connection open: the host's OS server
					// must abort the orphan and quarantine the port.
					app.ExitProcess(t)
					return
				}
				app.Close(t, fd)
			}
		})
	}

	if err := n.Run(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := n.RunFor(cfg.Drain); err != nil {
		return nil, err
	}

	snap := n.MetricsSnapshot()
	rep := &ChurnReport{
		Hosts:          cfg.Servers + cfg.Clients,
		ConnsPlan:      cfg.Clients * cfg.ConnsPerClient,
		ConnSetups:     snap.Sum(".core.conn_setup"),
		ConnTeardowns:  snap.Sum(".core.conn_teardown"),
		OrphansAborted: snap.Sum(".core.orphans_aborted"),
		SessionsMade:   snap.Sum(".core.sessions_made"),
		SessionsReaped: snap.Sum(".core.sessions_reaped"),
		LiveSessions:   snap.Sum(".core.sessions"),
		PortsInUse:     snap.Sum(".core.ports_in_use"),
		TimeWait:       snap.Sum(".tcp_state.time_wait"),
		Snapshot:       snap,
	}
	return rep, nil
}

// runChurnDistricted maps the churn config onto the districted city
// topology: same workload shape, same conservation laws, but the hosts
// sit behind district routers so the build can scale past 10^4 hosts
// and run sharded.
func runChurnDistricted(cfg ChurnConfig) (*ChurnReport, error) {
	if cfg.Servers%cfg.Districts != 0 || cfg.Clients%cfg.Districts != 0 {
		return nil, fmt.Errorf("churn: Servers (%d) and Clients (%d) must divide evenly into %d districts",
			cfg.Servers, cfg.Clients, cfg.Districts)
	}
	city, err := RunCity(CityConfig{
		Seed:               cfg.Seed,
		Districts:          cfg.Districts,
		ServersPerDistrict: cfg.Servers / cfg.Districts,
		ClientsPerDistrict: cfg.Clients / cfg.Districts,
		ConnsPerClient:     cfg.ConnsPerClient,
		CrossEvery:         4, // keep most churn local; every 4th connection rides a trunk
		OrphanEvery:        cfg.OrphanEvery,
		MsgBytes:           cfg.MsgBytes,
		Arch:               cfg.Arch,
		Shards:             cfg.Shards,
		SingleThreaded:     cfg.SingleThreaded,
		Drain:              cfg.Drain,
	})
	if err != nil {
		return nil, err
	}
	if err := city.Check(); err != nil {
		return nil, err
	}
	c := city.Churn
	return &ChurnReport{
		Hosts:          city.Hosts,
		ConnsPlan:      city.ConnsPlan,
		ConnSetups:     c.ConnSetups,
		ConnTeardowns:  c.ConnTeardowns,
		OrphansAborted: c.OrphansAborted,
		SessionsMade:   c.SessionsMade,
		SessionsReaped: c.SessionsReaped,
		LiveSessions:   c.LiveSessions,
		PortsInUse:     c.PortsInUse,
		TimeWait:       c.TimeWait,
		Snapshot:       city.Snapshot,
	}, nil
}
