package psd

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/slo"
	"repro/internal/trace"
)

// SLOResult re-exports one evaluated SLO assertion.
type SLOResult = slo.Result

// ScenarioConfig selects a named scenario, its seed, and the
// architecture every host in it runs.
type ScenarioConfig struct {
	Name     string
	Seed     int64
	Arch     Arch
	ArchName string // label for reports; cosmetic

	// Trace adds flight-recorder layers beyond the scenario's own
	// defaults (the partition scenario always records; others are
	// untraced unless asked).
	Trace []TraceLayer

	// Observe, when set, is called with the fully built network just
	// before the workload runs. Tests and tooling use it to hold on to
	// the recorder or registry for post-mortem artifacts.
	Observe func(*Network)
}

// ScenarioResult is a scenario's deterministic verdict plus headline
// numbers. Identical configs produce byte-identical results.
type ScenarioResult struct {
	Name     string `json:"name"`
	Arch     string `json:"arch"`
	Seed     int64  `json:"seed"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`

	// Request-latency quantiles (connect + request + full response).
	ReqP50Ns  int64 `json:"req_p50_ns"`
	ReqP99Ns  int64 `json:"req_p99_ns"`
	ReqP999Ns int64 `json:"req_p999_ns"`
	// TCP connect-latency p99 merged across every host stack.
	ConnectP99Ns int64 `json:"connect_p99_ns"`

	// Loss accounting: segment-level drops (fault injection, link
	// down) and router queue drops (RED early + tail).
	NetDrops    int64 `json:"net_drops"`
	RouterDrops int64 `json:"router_drops"`
	Forwarded   int64 `json:"forwarded"`
	TCPRexmits  int64 `json:"tcp_rexmits"`

	SimNs int64 `json:"sim_ns"` // virtual time consumed, drain included

	SLO    []SLOResult `json:"slo"`
	Passed bool        `json:"passed"`
}

// ScenarioNames lists the suite in canonical order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioDefs))
	for _, d := range scenarioDefs {
		names = append(names, d.name)
	}
	return names
}

type scenarioDef struct {
	name string
	doc  string
	run  func(*scenarioEnv)
}

var scenarioDefs = []scenarioDef{
	{"incast", "synchronized many-to-one fan-in through a slow router port (RED pressure)", runIncast},
	{"flash-crowd", "connection storm: a burst of short-lived clients hitting one server", runFlashCrowd},
	{"heavy-tail", "Pareto response sizes with exponential think times", runHeavyTail},
	{"diurnal", "arrival rate follows a compressed day curve", runDiurnal},
	{"partition", "transit link goes down mid-run; TCP recovers after heal", runPartition},
}

// RunScenario builds and executes the named scenario, evaluates its
// SLOs, and returns the deterministic verdict.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	var def *scenarioDef
	for i := range scenarioDefs {
		if scenarioDefs[i].name == cfg.Name {
			def = &scenarioDefs[i]
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("psd: unknown scenario %q (have %v)", cfg.Name, ScenarioNames())
	}
	if cfg.ArchName == "" {
		cfg.ArchName = [...]string{"decomposed", "inkernel", "server"}[cfg.Arch.kind]
	}

	env := &scenarioEnv{cfg: cfg}
	def.run(env)
	if env.err != nil {
		return nil, fmt.Errorf("psd: scenario %s: %w", cfg.Name, env.err)
	}
	return env.finish()
}

// scenarioEnv is the shared harness: network, scenario-scoped
// instruments, the SLO suite under construction, and bookkeeping.
type scenarioEnv struct {
	cfg   ScenarioConfig
	n     *Network
	rng   *rand.Rand
	suite slo.Suite
	err   error

	reqH     *metrics.Histogram
	requests *metrics.Counter
	errors   *metrics.Counter

	drain time.Duration
}

// setup creates the network (metrics always on; trace layers as given)
// and the scenario-scoped instruments.
func (e *scenarioEnv) setup(layers ...TraceLayer) {
	seen := map[TraceLayer]bool{}
	for _, l := range layers {
		seen[l] = true
	}
	for _, l := range e.cfg.Trace {
		if !seen[l] {
			layers = append(layers, l)
			seen[l] = true
		}
	}
	e.n = NewConfig(Config{Seed: e.cfg.Seed, Metrics: true, Trace: layers})
	// Scenario-local stream: deterministic, and independent of the
	// simulator's own stream so traffic shaping never perturbs
	// protocol-level randomness.
	e.rng = rand.New(rand.NewSource(e.cfg.Seed ^ 0x5eed0f5ce0a1205))
	sc := e.n.reg.Scope("scenario")
	e.reqH = sc.Histogram("req_ns")
	e.requests = sc.NewCounter("requests")
	e.errors = sc.NewCounter("errors")
	e.drain = 75 * time.Second
}

// run executes the workload plus the drain period (2MSL + port
// quarantine), so conservation SLOs see a quiescent network.
func (e *scenarioEnv) run() {
	if e.err != nil {
		return
	}
	if e.cfg.Observe != nil {
		e.cfg.Observe(e.n)
	}
	if err := e.n.Run(); err != nil {
		e.err = err
		return
	}
	if err := e.n.RunFor(e.drain); err != nil {
		e.err = err
	}
}

// baseSLOs installs the assertions every scenario shares: the workload
// completed without application errors, and no protocol state leaked.
func (e *scenarioEnv) baseSLOs(wantRequests int64) {
	e.suite.Add(slo.Expr("completed", func(c *slo.Context) (bool, string) {
		got := c.Snap.Sum("scenario.requests")
		return got == wantRequests, fmt.Sprintf("%d/%d requests completed", got, wantRequests)
	}))
	e.suite.Add(slo.SumZero("no-app-errors", "scenario.errors"))
	e.suite.Add(slo.SumZero("no-established-leak", ".tcp_state.established"))
	e.suite.Add(slo.SumZero("no-time-wait-leak", ".tcp_state.time_wait"))
	e.suite.Add(slo.SumZero("no-close-wait-leak", ".tcp_state.close_wait"))
	e.suite.Add(slo.SumZero("no-socket-leak", ".sockets"))
	e.suite.Add(slo.SumZero("no-checksum-errors", ".checksum_errors"))
}

// finish evaluates the SLO suite and assembles the result.
func (e *scenarioEnv) finish() (*ScenarioResult, error) {
	ctx := slo.NewContext(e.n.reg, e.n.Now())
	results := e.suite.Eval(ctx)

	r := &ScenarioResult{
		Name:     e.cfg.Name,
		Arch:     e.cfg.ArchName,
		Seed:     e.cfg.Seed,
		Requests: int64(e.requests.Value()),
		Errors:   int64(e.errors.Value()),
		SimNs:    int64(e.n.Now()),
		SLO:      results,
		Passed:   slo.Passed(results),
	}
	if e.reqH.Count() > 0 {
		r.ReqP50Ns = int64(e.reqH.Quantile(0.50))
		r.ReqP99Ns = int64(e.reqH.Quantile(0.99))
		r.ReqP999Ns = int64(e.reqH.Quantile(0.999))
	}
	if h := e.n.reg.MergedHistogram(".connect_ns"); h.Count() > 0 {
		r.ConnectP99Ns = int64(h.Quantile(0.99))
	}
	snap := ctx.Snap
	r.NetDrops = snap.Sum(".drops_loss") + snap.Sum(".drops_down") + snap.Sum(".partition_drops")
	r.RouterDrops = snap.Sum(".red_drops") + snap.Sum(".tail_drops")
	r.Forwarded = snap.Sum(".forwarded")
	r.TCPRexmits = snap.Sum(".tcp_rexmit")
	return r, nil
}

// expDelay draws an exponential inter-arrival time with the given mean.
func (e *scenarioEnv) expDelay(mean time.Duration) time.Duration {
	return time.Duration(e.rng.ExpFloat64() * float64(mean))
}

// paretoSize draws a bounded Pareto-distributed size: heavy-tailed
// request sizes are the hallmark of internet traffic.
func (e *scenarioEnv) paretoSize(xm float64, alpha float64, cap int) int {
	v := xm / math.Pow(e.rng.Float64(), 1/alpha)
	if v > float64(cap) {
		return cap
	}
	return int(v)
}

// ---- request/response application -----------------------------------
//
// Every scenario speaks one tiny protocol: the client connects, sends
// an 8-byte header [uploadLen, downloadLen] followed by uploadLen
// payload bytes; the server drains the upload, streams downloadLen
// bytes back, and both sides close. Incast is big uploads, fan-out is
// big downloads, flash crowds are many tiny exchanges.

const scenarioPort = 7000

// scenarioServer accepts exactly total connections on h, serving each
// in its own thread.
func (e *scenarioEnv) scenarioServer(h *Host, total int) {
	app := h.NewApp("srv")
	e.n.Spawn("srv-accept", func(t *Thread) {
		ls, err := app.Socket(t, SockStream)
		if err != nil {
			e.errors.Inc()
			return
		}
		if err := app.Bind(t, ls, SockAddr{Port: scenarioPort}); err != nil {
			e.errors.Inc()
			return
		}
		if err := app.Listen(t, ls, 64); err != nil {
			e.errors.Inc()
			return
		}
		for i := 0; i < total; i++ {
			cfd, _, err := app.Accept(t, ls)
			if err != nil {
				e.errors.Inc()
				break
			}
			fd := cfd
			e.n.Spawn(fmt.Sprintf("srv-conn-%d", i), func(t *Thread) {
				e.serveConn(app, t, fd)
			})
		}
		app.Close(t, ls)
	})
}

func (e *scenarioEnv) serveConn(app App, t *Thread, fd int) {
	defer app.Close(t, fd)
	var hdr [8]byte
	if !recvFull(app, t, fd, hdr[:]) {
		e.errors.Inc()
		return
	}
	up := int(binary.BigEndian.Uint32(hdr[0:4]))
	down := int(binary.BigEndian.Uint32(hdr[4:8]))
	if up > 0 && !discardN(app, t, fd, up) {
		e.errors.Inc()
		return
	}
	if down > 0 && !sendN(app, t, fd, down) {
		e.errors.Inc()
		return
	}
}

// doRequest runs one full exchange and records its latency.
func (e *scenarioEnv) doRequest(app App, t *Thread, dst SockAddr, up, down int) {
	start := e.n.Now()
	fd, err := app.Socket(t, SockStream)
	if err != nil {
		e.errors.Inc()
		return
	}
	defer app.Close(t, fd)
	if err := app.Connect(t, fd, dst); err != nil {
		e.errors.Inc()
		return
	}
	// Header and upload go out as one write: a request is one message,
	// and splitting it would hand Nagle a needless round trip.
	req := make([]byte, 8+up)
	binary.BigEndian.PutUint32(req[0:4], uint32(up))
	binary.BigEndian.PutUint32(req[4:8], uint32(down))
	for i := 8; i < len(req); i++ {
		req[i] = byte(i)
	}
	if !sendFull(app, t, fd, req) {
		e.errors.Inc()
		return
	}
	if down > 0 && !discardN(app, t, fd, down) {
		e.errors.Inc()
		return
	}
	e.reqH.Observe(int64(e.n.Now() - start))
	e.requests.Inc()
}

func recvFull(app App, t *Thread, fd int, buf []byte) bool {
	for off := 0; off < len(buf); {
		nr, err := app.Recv(t, fd, buf[off:], 0)
		if err != nil || nr == 0 {
			return false
		}
		off += nr
	}
	return true
}

func discardN(app App, t *Thread, fd, n int) bool {
	buf := make([]byte, 4096)
	for got := 0; got < n; {
		want := n - got
		if want > len(buf) {
			want = len(buf)
		}
		nr, err := app.Recv(t, fd, buf[:want], 0)
		if err != nil || nr == 0 {
			return false
		}
		got += nr
	}
	return true
}

func sendFull(app App, t *Thread, fd int, buf []byte) bool {
	for off := 0; off < len(buf); {
		nw, err := app.Send(t, fd, buf[off:], 0)
		if err != nil || nw == 0 {
			return false
		}
		off += nw
	}
	return true
}

func sendN(app App, t *Thread, fd, n int) bool {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	for sent := 0; sent < n; {
		want := n - sent
		if want > len(buf) {
			want = len(buf)
		}
		nw, err := app.Send(t, fd, buf[:want], 0)
		if err != nil || nw == 0 {
			return false
		}
		sent += nw
	}
	return true
}

// ---- the five scenarios ---------------------------------------------

// runIncast: 8 workers on a fast subnet simultaneously push 12 KB each
// to one aggregator behind a 5 Mb/s downlink — the classic fan-in that
// fills the router's egress queue and exercises RED plus TCP recovery.
func runIncast(e *scenarioEnv) {
	e.setup()
	agg := e.n.NewSubnet("agg", "10.1.0.0/24")
	workers := e.n.NewSubnet("workers", "10.2.0.0/24")
	agg.SetBitRate(5_000_000) // the slow side: queue pressure lives here
	e.n.NewRouter("core").Attach(agg, "10.1.0.254").Attach(workers, "10.2.0.254")

	const (
		nWorkers = 8
		rounds   = 4
		upload   = 12 << 10
	)
	srv := agg.Host("agg", "10.1.0.10", e.cfg.Arch)
	e.scenarioServer(srv, nWorkers*rounds)

	for w := 0; w < nWorkers; w++ {
		w := w
		host := workers.Host(fmt.Sprintf("w%d", w), fmt.Sprintf("10.2.0.%d", w+1), e.cfg.Arch)
		app := host.NewApp("push")
		e.n.Spawn(fmt.Sprintf("push-%d", w), func(t *Thread) {
			for r := 0; r < rounds; r++ {
				// All workers fire at the same virtual instant each
				// round — synchronized fan-in is the point.
				target := time.Duration(r+1) * 250 * time.Millisecond
				if now := e.n.Now(); target > now {
					t.Sleep(target - now)
				}
				e.doRequest(app, t, srv.Addr(scenarioPort), upload, 16)
			}
		})
	}

	e.baseSLOs(nWorkers * rounds)
	e.suite.Add(slo.QuantileAtMost("req-p99", "scenario.req_ns", 0.99, 3*time.Second))
	e.suite.Add(slo.RatioAtMost("router-drop-ratio", ".red_drops", ".forwarded", 0.10))
	e.suite.Add(slo.SumAtLeast("router-forwarded", ".forwarded", int64(nWorkers*rounds)))
	e.run()
}

// runFlashCrowd: twenty short-lived clients — half routed, half local —
// pile onto one server inside a ~200 ms window: a connection storm.
func runFlashCrowd(e *scenarioEnv) {
	e.setup()
	west := e.n.NewSubnet("west", "10.1.0.0/24")
	east := e.n.NewSubnet("east", "10.2.0.0/24")
	e.n.NewRouter("core").Attach(west, "10.1.0.254").Attach(east, "10.2.0.254")

	const nClients = 20
	srv := east.Host("origin", "10.2.0.100", e.cfg.Arch)
	e.scenarioServer(srv, nClients)

	arrival := time.Duration(0)
	for i := 0; i < nClients; i++ {
		i := i
		sub, base := west, "10.1.0"
		if i%2 == 1 {
			sub, base = east, "10.2.0"
		}
		host := sub.Host(fmt.Sprintf("c%d", i), fmt.Sprintf("%s.%d", base, i/2+1), e.cfg.Arch)
		app := host.NewApp("browser")
		arrival += e.expDelay(10 * time.Millisecond)
		at := arrival
		e.n.Spawn(fmt.Sprintf("crowd-%d", i), func(t *Thread) {
			t.Sleep(at)
			e.doRequest(app, t, srv.Addr(scenarioPort), 64, 1<<10)
		})
	}

	e.baseSLOs(nClients)
	e.suite.Add(slo.QuantileAtMost("connect-p99", ".connect_ns", 0.99, 1*time.Second))
	e.suite.Add(slo.QuantileAtMost("req-p99", "scenario.req_ns", 0.99, 2*time.Second))
	e.suite.Add(slo.RatioAtMost("net-drop-ratio", ".drops_loss", ".frames_sent", 0.01))
	e.run()
}

// runHeavyTail: six clients issue sequential requests whose response
// sizes follow a bounded Pareto distribution (α=1.2) with exponential
// think times — elephants and mice on the same path.
func runHeavyTail(e *scenarioEnv) {
	e.setup()
	west := e.n.NewSubnet("west", "10.1.0.0/24")
	east := e.n.NewSubnet("east", "10.2.0.0/24")
	e.n.NewRouter("core").Attach(west, "10.1.0.254").Attach(east, "10.2.0.254")

	const (
		nClients    = 6
		perClient   = 15
		sizeCap     = 32 << 10
		sizeMin     = 512.0
		paretoAlpha = 1.2
	)
	srv := east.Host("store", "10.2.0.10", e.cfg.Arch)
	e.scenarioServer(srv, nClients*perClient)

	for c := 0; c < nClients; c++ {
		c := c
		host := west.Host(fmt.Sprintf("c%d", c), fmt.Sprintf("10.1.0.%d", c+1), e.cfg.Arch)
		app := host.NewApp("get")
		e.n.Spawn(fmt.Sprintf("tail-%d", c), func(t *Thread) {
			t.Sleep(time.Duration(c) * 5 * time.Millisecond)
			for r := 0; r < perClient; r++ {
				down := e.paretoSize(sizeMin, paretoAlpha, sizeCap)
				e.doRequest(app, t, srv.Addr(scenarioPort), 64, down)
				t.Sleep(e.expDelay(15 * time.Millisecond))
			}
		})
	}

	e.baseSLOs(nClients * perClient)
	e.suite.Add(slo.QuantileAtMost("req-p50", "scenario.req_ns", 0.50, 500*time.Millisecond))
	e.suite.Add(slo.QuantileAtMost("req-p99", "scenario.req_ns", 0.99, 5*time.Second))
	e.suite.Add(slo.RatioAtMost("router-drop-ratio", ".red_drops", ".forwarded", 0.05))
	e.run()
}

// runDiurnal: one-shot clients arrive according to a compressed day
// curve — eight 500 ms "hours" whose arrival counts trace a load peak.
func runDiurnal(e *scenarioEnv) {
	e.setup()
	west := e.n.NewSubnet("west", "10.1.0.0/24")
	east := e.n.NewSubnet("east", "10.2.0.0/24")
	e.n.NewRouter("core").Attach(west, "10.1.0.254").Attach(east, "10.2.0.254")

	curve := []int{1, 2, 4, 6, 8, 6, 3, 1} // arrivals per slot
	const slot = 500 * time.Millisecond
	total := 0
	for _, k := range curve {
		total += k
	}

	srv := east.Host("api", "10.2.0.10", e.cfg.Arch)
	e.scenarioServer(srv, total)

	// A fixed pool of client hosts; each arrival is its own process.
	const pool = 4
	apps := make([]App, pool)
	for i := 0; i < pool; i++ {
		host := west.Host(fmt.Sprintf("pool%d", i), fmt.Sprintf("10.1.0.%d", i+1), e.cfg.Arch)
		apps[i] = host.NewApp("worker")
	}
	id := 0
	for s, k := range curve {
		for j := 0; j < k; j++ {
			app := apps[id%pool]
			at := time.Duration(s)*slot + e.expDelay(slot/4)
			id++
			e.n.Spawn(fmt.Sprintf("arr-%d", id), func(t *Thread) {
				t.Sleep(at)
				e.doRequest(app, t, srv.Addr(scenarioPort), 128, 2<<10)
			})
		}
	}

	e.baseSLOs(int64(total))
	e.suite.Add(slo.QuantileAtMost("req-p99", "scenario.req_ns", 0.99, 2*time.Second))
	e.suite.Add(slo.QuantileAtMost("req-p999", "scenario.req_ns", 0.999, 3*time.Second))
	e.run()
}

// runPartition: a regional cut — the transit link between two routers
// goes down mid-run for 800 ms; TCP rides it out on retransmission and
// every request still completes after heal.
func runPartition(e *scenarioEnv) {
	e.setup(TraceNet, TraceStack)
	west := e.n.NewSubnet("west", "10.1.0.0/24")
	mid := e.n.NewSubnet("mid", "10.9.0.0/24")
	east := e.n.NewSubnet("east", "10.2.0.0/24")
	r1 := e.n.NewRouter("r1").Attach(west, "10.1.0.254").Attach(mid, "10.9.0.1")
	r2 := e.n.NewRouter("r2").Attach(east, "10.2.0.254").Attach(mid, "10.9.0.2")
	if err := r1.AddRoute("10.2.0.0/24", "10.9.0.2"); err != nil {
		e.err = err
		return
	}
	if err := r2.AddRoute("10.1.0.0/24", "10.9.0.1"); err != nil {
		e.err = err
		return
	}

	const (
		nClients  = 4
		perClient = 6
	)
	srv := east.Host("primary", "10.2.0.1", e.cfg.Arch)
	e.scenarioServer(srv, nClients*perClient)

	for c := 0; c < nClients; c++ {
		c := c
		host := west.Host(fmt.Sprintf("c%d", c), fmt.Sprintf("10.1.0.%d", c+1), e.cfg.Arch)
		app := host.NewApp("region")
		e.n.Spawn(fmt.Sprintf("part-%d", c), func(t *Thread) {
			t.Sleep(time.Duration(c) * 20 * time.Millisecond)
			for r := 0; r < perClient; r++ {
				e.doRequest(app, t, srv.Addr(scenarioPort), 256, 1<<10)
				t.Sleep(250 * time.Millisecond)
			}
		})
	}

	// Cut the transit link out from under the traffic.
	if err := mid.ApplyFaultPlan("@1s down r1.mid for=800ms"); err != nil {
		e.err = err
		return
	}

	e.baseSLOs(nClients * perClient)
	e.suite.Add(slo.SumAtLeast("link-cut-dropped-frames", ".drops_down", 1))
	e.suite.Add(slo.SumAtLeast("tcp-retransmitted", ".tcp_rexmit", 1))
	e.suite.Add(slo.QuantileAtMost("req-p999", "scenario.req_ns", 0.999, 10*time.Second))
	rec := e.n.Trace()
	e.suite.Add(slo.Expr("trace-drop-then-rexmit", func(*slo.Context) (bool, string) {
		err := trace.Expect(rec.Records(),
			trace.Want{Event: trace.EvFrameDrop, Contains: "down"},
			trace.Want{Event: trace.EvTCPRexmit},
		)
		if err != nil {
			return false, err.Error()
		}
		return true, "frame drop (link down) precedes a TCP retransmit"
	}))
	e.run()
}
