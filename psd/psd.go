// Package psd is the public face of the protocol-service-decomposition
// library: it assembles simulated networks of hosts, each running one of
// the three protocol architectures from Maeda & Bershad's SOSP '93 paper,
// and hands out BSD socket interfaces to application code.
//
// A minimal program:
//
//	n := psd.New(1)
//	a := n.Host("alice", "10.0.0.1", psd.Decomposed())
//	b := n.Host("bob", "10.0.0.2", psd.Decomposed())
//	app := b.NewApp("echo-server")
//	n.Spawn("server", func(t *psd.Thread) { ... app.Socket(t, psd.SockDgram) ... })
//	...
//	n.Run()
//
// Application code is written against the standard socket calls (socket,
// bind, connect, listen, accept, the send/recv family, select, fork) and
// runs unchanged on any architecture — which is the paper's compatibility
// claim, enforced here by the shared socketapi.API interface.
package psd

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/costs"
	"repro/internal/dataplane"
	"repro/internal/fault"
	"repro/internal/inkernel"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/socketapi"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/uxserver"
	"repro/internal/wire"
)

// Metrics types, re-exported so tooling and tests can consume registry
// snapshots without importing internal packages.
type (
	// Registry is the deterministic metrics registry (see Config.Metrics).
	Registry = metrics.Registry
	// MetricsSnapshot is a point-in-time, sorted reading of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsItem is one named instrument inside a snapshot.
	MetricsItem = metrics.Item
	// MetricsScope is a named prefix in the registry; adapters bind
	// their counters under one (see Framer.BindMetrics).
	MetricsScope = metrics.Scope
	// HistView is a rendered histogram (count/sum/min/max/quantiles).
	HistView = metrics.HistView
	// SocketInfo is one row of a netstat-style socket table.
	SocketInfo = stack.SocketInfo
)

// Data-plane types, re-exported so tooling and tests can program a
// host's data plane without importing internal packages.
type (
	// Plane is a host's programmable data plane (see Host.Dataplane):
	// conntrack, NAT, and L4 load balancing on the kernel filter hook.
	Plane = dataplane.Plane
	// VIP is one virtual service spread across a backend pool.
	VIP = dataplane.VIP
	// PoolBackend is one member of a VIP's backend pool.
	PoolBackend = dataplane.Backend
	// FlowInfo is one row of a data plane's connection-tracking table.
	FlowInfo = dataplane.FlowInfo
)

// Flight-recorder types, re-exported so tooling and tests can consume
// traces without importing internal packages.
type (
	// Recorder is the deterministic flight recorder (see Config.Trace).
	Recorder = trace.Recorder
	// TraceRecord is one recorded event.
	TraceRecord = trace.Record
	// TraceLayer selects which subsystems the recorder captures.
	TraceLayer = trace.Layer
	// TraceWant is one step of an ordered-subsequence trace oracle.
	TraceWant = trace.Want
)

// Trace layers, re-exported for Config.Trace.
const (
	TraceSim    = trace.LayerSim
	TraceNet    = trace.LayerNet
	TraceFilter = trace.LayerFilter
	TraceStack  = trace.LayerStack
	TraceCore   = trace.LayerCore
)

// Re-exported application-facing types.
type (
	// App is the socket interface an application process uses.
	App = socketapi.API
	// ZeroCopyApp is the optional NEWAPI shared-buffer interface (§4.2);
	// only Decomposed hosts provide a meaningful implementation.
	ZeroCopyApp = socketapi.ZeroCopyAPI
	// ChainApp is the chain-based scatter-gather/sendfile interface:
	// SendChain, RecvPeek/RecvRelease, and cross-socket Splice. Every
	// architecture implements it; only Decomposed aliases storage on the
	// send/receive paths (the baselines degrade to copies), and Splice
	// forwards without mapping payload into the application at all.
	ChainApp = socketapi.ChainAPI
	// Chain is a refcounted scatter-gather buffer chain.
	Chain = mbuf.Chain
	// Range declares one byte range RecvPeek must materialize.
	Range = socketapi.Range
	// RecvView is RecvPeek's result: an aliased chain plus the
	// selectively materialized ranges.
	RecvView = socketapi.RecvView
	// Thread is a simulated thread of execution.
	Thread = sim.Proc
	// SockAddr is an Internet socket address.
	SockAddr = socketapi.SockAddr
	// FDSet names descriptors for Select.
	FDSet = socketapi.FDSet
)

// Socket types and flags, re-exported for application code.
const (
	SockStream = socketapi.SockStream
	SockDgram  = socketapi.SockDgram
	MsgOOB     = socketapi.MsgOOB
	MsgPeek    = socketapi.MsgPeek
	ShutRd     = socketapi.ShutRd
	ShutWr     = socketapi.ShutWr
	ShutRdWr   = socketapi.ShutRdWr
	SoRcvBuf   = socketapi.SoRcvBuf
	SoSndBuf   = socketapi.SoSndBuf
	TCPNoDelay = socketapi.TCPNoDelay
)

// Arch selects a host's protocol architecture.
type Arch struct {
	kind int // 0 decomposed, 1 kernel, 2 server
	prof costs.Profile
	srv  costs.Profile
}

// Decomposed is the paper's architecture: an OS server plus per-
// application protocol libraries over the integrated packet filter
// (Library-SHM-IPF cost profile).
func Decomposed() Arch {
	return Arch{kind: 0, prof: costs.CalibrateTable2(costs.DECLibrarySHMIPF()), srv: costs.DECServerUX()}
}

// DecomposedIPC is the decomposed architecture over per-packet IPC
// delivery.
func DecomposedIPC() Arch {
	return Arch{kind: 0, prof: costs.CalibrateTable2(costs.DECLibraryIPC()), srv: costs.DECServerUX()}
}

// DecomposedOffload is the decomposed architecture with the simulated
// NIC offload engine attached (Library-SHM-IPF-OFFLOAD): TSO/GSO
// transmit segmentation, LRO receive coalescing, checksum offload, and
// adaptive interrupt moderation on every host NIC.
func DecomposedOffload() Arch {
	return Arch{kind: 0, prof: costs.CalibrateTable2(costs.DECLibrarySHMIPFOffload()), srv: costs.DECServerUX()}
}

// InKernel is the Mach 2.5 / Ultrix baseline: protocols in the kernel.
func InKernel() Arch { return Arch{kind: 1, prof: costs.CalibrateTable2(costs.DECKernelMach25())} }

// ServerBased is the UX baseline: protocols in a single user-level
// server.
func ServerBased() Arch { return Arch{kind: 2, prof: costs.CalibrateTable2(costs.DECServerUX())} }

// ArchFlavor is a named architecture constructor, for suites that
// iterate or select the comparison columns by name.
type ArchFlavor struct {
	Name string
	New  func() Arch
}

// ArchFlavors is the shared registry of comparison columns, in suite
// order. Harnesses that fan a workload across architectures (psdbench
// -scenarios, -scale, the offload suite) take their lists from here, so
// a new column appears in every suite at once.
func ArchFlavors() []ArchFlavor {
	return []ArchFlavor{
		{"decomposed", Decomposed},
		{"inkernel", InKernel},
		{"server", ServerBased},
		{"offload", DecomposedOffload},
	}
}

// FlavorByName resolves an ArchFlavors entry by name.
func FlavorByName(name string) (ArchFlavor, error) {
	names := make([]string, 0, 4)
	for _, f := range ArchFlavors() {
		if f.Name == name {
			return f, nil
		}
		names = append(names, f.Name)
	}
	return ArchFlavor{}, fmt.Errorf("psd: unknown architecture %q (have %s)", name, strings.Join(names, ", "))
}

// Network is a simulated 10 Mb/s Ethernet with attached hosts. Larger
// internets are built from Subnets joined by Routers (see NewSubnet and
// NewRouter); the Network itself doubles as the default subnet.
//
// With Config.Shards set, the network runs as a shard group: subnets
// and routers are placed on shards (NewSubnetOn, NewRouterOn), shards
// are joined only by Trunks (whose propagation delay is the group's
// conservative lookahead), and the observable schedule — traces,
// metrics, socket tables — is byte-identical whether the shards run
// serially or on worker goroutines, and for any shard count.
type Network struct {
	sim     *sim.Sim
	group   *sim.Group // nil in classic single-loop mode
	seg     *simnet.Segment
	rec     *trace.Recorder
	reg     *metrics.Registry
	next    int
	subnets []*Subnet
	routers []*Router
	trunks  []*Trunk
}

// Config collects network construction options beyond the seed.
type Config struct {
	// Seed drives every pseudo-random decision; runs with the same seed
	// and workload are bit-identical.
	Seed int64

	// Deadline bounds virtual time (0 means the 2 h default).
	Deadline time.Duration

	// Trace lists the flight-recorder layers to capture (TraceSim,
	// TraceNet, TraceFilter, TraceStack, TraceCore). Empty means tracing
	// is off and costs nothing on any hot path.
	Trace []TraceLayer

	// TraceLimit caps the number of retained records (0 = unlimited).
	TraceLimit int

	// Metrics enables the deterministic metrics registry: every layer's
	// counters, gauges, and virtual-clock latency histograms become
	// readable through Network.Metrics and Host.Netstat. Disabled (the
	// default) it costs nothing on any hot path.
	Metrics bool

	// Shards splits the simulation into that many per-shard event
	// queues joined at Trunk boundaries (conservative lookahead
	// synchronization). Zero keeps the classic single event loop,
	// bit-identical to prior releases. Shards >= 1 selects group mode;
	// results are independent of the count, so Shards: 1 is the
	// reference schedule any higher count must reproduce exactly.
	Shards int

	// SingleThreaded runs a shard group serially on the calling
	// goroutine instead of on worker goroutines. Results are identical
	// either way; the serial mode exists so equivalence tests (and
	// debuggers) can hold everything on one stack.
	SingleThreaded bool
}

// New creates a network; runs are deterministic for a given seed.
func New(seed int64) *Network { return NewConfig(Config{Seed: seed}) }

// NewConfig creates a network with explicit options.
func NewConfig(cfg Config) *Network {
	deadline := sim.Time(2 * time.Hour)
	if cfg.Deadline > 0 {
		deadline = sim.Time(cfg.Deadline)
	}
	n := &Network{}
	var s *sim.Sim
	if cfg.Shards > 0 {
		g := sim.NewGroup(cfg.Seed, cfg.Shards)
		g.SingleThreaded = cfg.SingleThreaded
		g.Deadline = deadline
		n.group = g
		s = g.Shard(0)
	} else {
		s = sim.New(cfg.Seed)
		s.Deadline = deadline
	}
	n.sim = s
	n.seg = simnet.NewSegment(s)
	if cfg.Metrics {
		n.reg = metrics.NewRegistry()
		n.seg.SetMetrics(n.reg.Scope("net"))
	}
	if len(cfg.Trace) > 0 {
		n.rec = trace.New(s, cfg.Trace...)
		if cfg.TraceLimit > 0 {
			n.rec.SetLimit(cfg.TraceLimit)
		}
		if n.group != nil {
			// Group mode: nothing writes to the root buffer. Every
			// component gets a lane (ids follow construction order, so
			// the merged stream is independent of the shard mapping),
			// and each shard's scheduler gets one of its own.
			for _, sh := range n.group.Shards() {
				sh.SetTracer(n.rec.Lane(sh).SimTracer())
			}
			n.seg.SetTrace(n.rec.Lane(s))
		} else {
			n.seg.SetTrace(n.rec)
			s.SetTracer(n.rec.SimTracer())
		}
	}
	return n
}

// lane returns the recorder a component owned by shard s should write
// to: the root recorder in classic mode (single event loop, single
// writer), a fresh per-component lane in group mode. Returns nil when
// tracing is off.
func (n *Network) lane(s *sim.Sim) *trace.Recorder {
	if n.rec == nil || n.group == nil {
		return n.rec
	}
	return n.rec.Lane(s)
}

// shardSim maps a shard index to its event queue. Classic networks have
// exactly shard 0.
func (n *Network) shardSim(i int) *sim.Sim {
	if n.group == nil {
		if i != 0 {
			panic(fmt.Sprintf("psd: shard %d requested but Config.Shards is 0 (classic mode has only shard 0)", i))
		}
		return n.sim
	}
	return n.group.Shard(i)
}

// Group exposes the shard group, or nil in classic mode.
func (n *Network) Group() *sim.Group { return n.group }

// NumShards returns the shard count (1 in classic mode).
func (n *Network) NumShards() int {
	if n.group == nil {
		return 1
	}
	return n.group.NumShards()
}

// Trace returns the flight recorder, or nil when tracing was not
// enabled in the Config.
func (n *Network) Trace() *Recorder { return n.rec }

// Metrics returns the metrics registry, or nil when metrics were not
// enabled in the Config.
func (n *Network) Metrics() *Registry { return n.reg }

// MetricsSnapshot reads the whole registry at the current virtual time
// (nil when metrics are disabled). The result is sorted by name and
// byte-stable across identical runs.
func (n *Network) MetricsSnapshot() *MetricsSnapshot {
	if n.reg == nil {
		return nil
	}
	snap := n.reg.Snapshot(n.Now())
	return &snap
}

// Sim exposes the underlying simulator for advanced use (timers, custom
// processes).
func (n *Network) Sim() *sim.Sim { return n.sim }

// Faults returns the network's deterministic fault injector: per-link
// drop/duplication/corruption/reorder/delay rates, link down, and
// partitions, all reproducible for a given seed. Host names are the
// link names.
func (n *Network) Faults() *fault.Injector { return n.seg.Faults() }

// SetLossRate injects uniform random frame loss (exercises TCP's
// recovery). It is shorthand for setting a Drop rate on Faults.
func (n *Network) SetLossRate(rate float64) {
	r := n.seg.Faults().DefaultRates()
	r.Drop = rate
	n.seg.Faults().SetDefaultRates(r)
}

// ApplyFaultPlan parses a fault plan in the compact text form (see
// fault.ParsePlan) and schedules it on the network.
func (n *Network) ApplyFaultPlan(text string) error {
	plan, err := fault.ParsePlan(text)
	if err != nil {
		return err
	}
	n.seg.Faults().Schedule(plan)
	return nil
}

// Host attaches a machine running the given architecture. addr is a
// dotted IPv4 address, e.g. "10.0.0.1".
func (n *Network) Host(name, addr string, arch Arch) *Host {
	return n.hostOn(n.sim, n.seg, nil, name, addr, arch)
}

// hostOn builds a host on a specific segment and shard, optionally
// installing a shared route table (subnet hosts route through their
// gateway; the default segment keeps each stack's everything-on-link
// table). s must be the shard that owns seg.
func (n *Network) hostOn(s *sim.Sim, seg *simnet.Segment, routes *stack.RouteTable, name, addr string, arch Arch) *Host {
	ip, err := ParseIP(addr)
	if err != nil {
		panic(err)
	}
	mac := n.nextMAC()
	h := &Host{name: name, ip: ip, sim: s}
	rec := n.lane(s)
	switch arch.kind {
	case 0:
		sys := core.New(s, seg, name, mac, ip, arch.prof, arch.srv)
		if rec != nil {
			sys.SetTrace(rec)
		}
		if n.reg != nil {
			sys.SetMetrics(n.reg.Scope("host." + name))
		}
		sys.SetRoutes(routes)
		h.newApp = func(app string) App { return sys.NewLibrary(app) }
		h.core = sys
		h.stacks = sys.Stacks
		h.kern = sys.Host
	case 1:
		sys := inkernel.New(s, seg, name, mac, ip, arch.prof)
		if rec != nil {
			sys.SetTrace(rec)
		}
		if n.reg != nil {
			sys.SetMetrics(n.reg.Scope("host." + name))
		}
		sys.St.SetRoutes(routes)
		h.newApp = func(app string) App { return sys.NewAPI(app) }
		h.stacks = func() []*stack.Stack { return []*stack.Stack{sys.St} }
		h.kern = sys.Host
	case 2:
		sys := uxserver.New(s, seg, name, mac, ip, arch.prof)
		if rec != nil {
			sys.SetTrace(rec)
		}
		if n.reg != nil {
			sys.SetMetrics(n.reg.Scope("host." + name))
		}
		sys.St.SetRoutes(routes)
		h.newApp = func(app string) App { return sys.NewAPI(app) }
		h.stacks = func() []*stack.Stack { return []*stack.Stack{sys.St} }
		h.kern = sys.Host
	}
	return h
}

// nextMAC hands out locally-administered MACs in attach order.
func (n *Network) nextMAC() wire.MAC {
	n.next++
	return wire.MAC{0x02, 0, 0, 0, byte(n.next >> 8), byte(n.next)}
}

// Spawn starts an application thread on shard 0; Run waits for all
// spawned threads on every shard. Threads that talk to a host placed
// on another shard should be spawned with Host.Spawn instead, so the
// thread runs on the same event queue as the sockets it drives.
func (n *Network) Spawn(name string, fn func(t *Thread)) { n.sim.Spawn(name, fn) }

// Run executes the simulation until every spawned thread finishes.
func (n *Network) Run() error {
	if n.group != nil {
		return n.group.Run()
	}
	return n.sim.Run()
}

// RunFor advances virtual time by d regardless of thread state.
func (n *Network) RunFor(d time.Duration) error {
	if n.group != nil {
		return n.group.RunFor(d)
	}
	return n.sim.RunFor(d)
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration {
	if n.group != nil {
		return n.group.Now().Duration()
	}
	return n.sim.Now().Duration()
}

// Host is one simulated machine.
type Host struct {
	name   string
	ip     wire.IPAddr
	sim    *sim.Sim
	newApp func(string) App
	core   *core.System
	stacks func() []*stack.Stack
	kern   *kern.Host
	plane  *dataplane.Plane
}

// Spawn starts an application thread on the host's own shard. In group
// mode every thread that uses a host's sockets must run on that host's
// shard; Spawn is how workloads arrange it.
func (h *Host) Spawn(name string, fn func(t *Thread)) { h.sim.Spawn(name, fn) }

// Netstat reads every protocol stack on the host (a Decomposed host has
// one per library plus the OS server's) into a deterministic, sorted
// netstat-style socket table.
func (h *Host) Netstat() []SocketInfo {
	var out []SocketInfo
	for _, st := range h.stacks() {
		out = append(out, st.SocketTable()...)
	}
	return out
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Addr returns the host's IP as a SockAddr with the given port.
func (h *Host) Addr(port uint16) SockAddr { return SockAddr{Addr: h.ip, Port: port} }

// NewApp creates an application process on the host and returns its
// socket interface. On a Decomposed host this links a protocol library
// into the new address space; on the baselines it is a plain process.
func (h *Host) NewApp(name string) App { return h.newApp(name) }

// Dataplane returns the host's programmable data plane, creating it and
// installing it on the kernel packet-filter hook on first use. The
// plane runs on every architecture — it lives below the protocol layers,
// in the one component all three organizations keep in the kernel.
// Its metrics appear under "host.<name>.kern.dataplane.*" when the
// network has metrics enabled.
func (h *Host) Dataplane() *Plane {
	if h.plane == nil {
		h.plane = dataplane.New(dataplane.Config{
			Sim:      h.sim,
			Name:     h.name,
			LocalIP:  h.ip,
			LocalMAC: h.kern.NIC.MAC(),
			Transmit: h.kern.RawTransmit,
		})
		h.kern.SetHook(h.plane)
		h.plane.BindMetrics(h.kern.KernScope().Sub("dataplane"))
	}
	return h.plane
}

// BackendSpec names one pool member for Host.InstallVIP: a simulated
// host and the port its real service listens on. Name defaults to the
// host's name (it keys the consistent hash, so it must be unique in the
// pool).
type BackendSpec struct {
	Host *Host
	Port uint16
	Name string
}

// InstallVIP publishes a virtual service at addr:port on this host's
// data plane, load-balanced across the given backends. The plane
// proxy-ARPs for the VIP address, so clients on the segment reach it
// with no host actually configuring it.
func (h *Host) InstallVIP(addr string, port uint16, backends ...BackendSpec) (*VIP, error) {
	ip, err := ParseIP(addr)
	if err != nil {
		return nil, err
	}
	bs := make([]PoolBackend, len(backends))
	for i, b := range backends {
		name := b.Name
		if name == "" {
			name = b.Host.Name()
		}
		bs[i] = PoolBackend{Name: name, IP: b.Host.ip, Port: b.Port, MAC: b.Host.kern.NIC.MAC()}
	}
	return h.Dataplane().InstallVIP(ip, port, bs)
}

// ServerStats reports the OS server's session-management counters on a
// Decomposed host (zeroes otherwise): sessions currently tracked,
// migrations into applications, returns to the server, and orphan aborts.
func (h *Host) ServerStats() (sessions, migrations, returns, orphans int) {
	if h.core == nil {
		return
	}
	srv := h.core.Server
	return srv.Sessions(), int(srv.Migrations.Value()), int(srv.Returns.Value()), int(srv.OrphansAborted.Value())
}

// ParseIP parses a dotted IPv4 address.
func ParseIP(s string) (wire.IPAddr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return wire.IPAddr{}, fmt.Errorf("psd: bad IPv4 address %q", s)
	}
	var ip wire.IPAddr
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return wire.IPAddr{}, fmt.Errorf("psd: bad IPv4 address %q", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// Addr builds a SockAddr from a dotted address and port, panicking on a
// malformed address (a convenience for example programs).
func Addr(ip string, port uint16) SockAddr {
	a, err := ParseIP(ip)
	if err != nil {
		panic(err)
	}
	return SockAddr{Addr: a, Port: port}
}

// NewFDSet builds a descriptor set for Select.
func NewFDSet(fds ...int) FDSet { return socketapi.NewFDSet(fds...) }

// NewChain returns an empty buffer chain.
func NewChain() *Chain { return mbuf.New() }

// ChainOf wraps b in a chain without copying. The chain aliases b: the
// caller must not mutate b while the chain (or any chain it was moved
// into) is live. Ideal for static payloads such as file contents.
func ChainOf(b []byte) *Chain { return mbuf.FromBytes(b) }

// ChainCopy copies b into pooled, refcounted chain storage.
func ChainCopy(b []byte) *Chain { return mbuf.FromBytesCopy(b) }

// ChainOps returns the chain-based interface of an App. Every
// architecture in this repository provides it, so ok is false only for
// foreign App implementations.
func ChainOps(app App) (ChainApp, bool) {
	c, ok := app.(ChainApp)
	return c, ok
}

// Segment exposes the raw Ethernet segment for monitoring tools
// (promiscuous capture); applications should not touch the wire directly.
func (n *Network) Segment() *simnet.Segment { return n.seg }
