package psd

import (
	"fmt"
	"strings"
	"time"
)

// LBConfig parameterizes the load-balancer churn workload: clients
// connecting through a VIP while the backend pool changes under them.
// Mid-run one backend is killed (its embryonic flows re-home, its
// established flows are reset) and a fresh backend joins; the
// conservation gate (LBReport.Check) then demands that every client
// connection was served by exactly one backend or visibly failed, and
// that no flow or SNAT port leaked through the churn.
type LBConfig struct {
	Seed           int64
	Arch           Arch
	Backends       int // initial pool size
	Clients        int
	ConnsPerClient int           // sequential connections per client
	MsgBytes       int           // request/response payload per connection
	ConnGap        time.Duration // client pause between connections (paces the run)

	KillAt time.Duration // virtual time to kill backend 0 (0 = never)
	AddAt  time.Duration // virtual time to add a fresh backend (0 = never)

	Drain time.Duration // idle time for conntrack GC to empty the table (0 = 90 s)
}

// DefaultLB is the churn point the acceptance gate runs at: 48
// connections across 4 clients and a 3-backend pool, with a kill and a
// re-add landing mid-run.
func DefaultLB(seed int64) LBConfig {
	return LBConfig{
		Seed:           seed,
		Arch:           Decomposed(),
		Backends:       3,
		Clients:        4,
		ConnsPerClient: 12,
		MsgBytes:       256,
		ConnGap:        50 * time.Millisecond,
		KillAt:         150 * time.Millisecond,
		AddAt:          300 * time.Millisecond,
	}
}

// LBReport is the outcome of one load-balancer churn run.
type LBReport struct {
	ConnsPlan int   `json:"conns_planned"`
	Served    int64 `json:"served"` // full request/response exchanges
	Failed    int64 `json:"failed"` // connections reset or refused under churn

	// BackendServed counts client-observed serves by backend pool index
	// (the response names its server).
	BackendServed []int64 `json:"backend_served"`

	// Plane accounting on the load-balancer host.
	LBConns   int64 `json:"lb_conns"`
	Rehomed   int64 `json:"rehomed"`
	Resets    int64 `json:"resets"`
	Refused   int64 `json:"refused"`
	CTCreated int64 `json:"ct_created"`
	CTExpired int64 `json:"ct_expired"`

	// Residue after drain; both must be zero.
	FlowsLeft int64 `json:"flows_left"`
	SNATLeft  int64 `json:"snat_left"`

	Snapshot *MetricsSnapshot `json:"-"`
}

// Check verifies the run's conservation laws: every planned connection
// either completed against exactly one backend or failed visibly, at
// least one backend served, and the churn left no flow-table entry or
// SNAT port behind.
func (r *LBReport) Check() error {
	if r.Served+r.Failed != int64(r.ConnsPlan) {
		return fmt.Errorf("lb: served %d + failed %d != planned %d", r.Served, r.Failed, r.ConnsPlan)
	}
	var byBackend int64
	for _, c := range r.BackendServed {
		byBackend += c
	}
	if byBackend != r.Served {
		return fmt.Errorf("lb: per-backend serves sum to %d, served %d (a connection must land on exactly one backend)",
			byBackend, r.Served)
	}
	if r.Served == 0 {
		return fmt.Errorf("lb: no connection served")
	}
	if r.FlowsLeft != 0 {
		return fmt.Errorf("lb: %d conntrack flows leaked", r.FlowsLeft)
	}
	if r.SNATLeft != 0 {
		return fmt.Errorf("lb: %d SNAT ports leaked", r.SNATLeft)
	}
	return nil
}

const (
	lbVIPAddr  = "10.0.0.100"
	lbVIPPort  = uint16(80)
	lbBackPort = uint16(8080)
	lbQuitByte = 'Q' // request prefix that tells a backend to stop serving
)

// RunLB builds a network — one load-balancer host, a backend pool, and
// client hosts — and runs the churn workload to completion plus drain.
// Deterministic for a given config: two runs produce byte-identical
// registry snapshots.
func RunLB(cfg LBConfig) (*LBReport, error) {
	if cfg.Backends < 2 {
		return nil, fmt.Errorf("lb: need at least 2 backends")
	}
	if cfg.MsgBytes < 8 {
		cfg.MsgBytes = 8
	}
	if cfg.ConnGap <= 0 {
		cfg.ConnGap = 20 * time.Millisecond
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 90 * time.Second
	}
	n := NewConfig(Config{Seed: cfg.Seed, Metrics: true})

	lb := n.Host("lb", "10.0.0.2", cfg.Arch)
	// One spare pool slot: AddAt installs backend index cfg.Backends.
	total := cfg.Backends
	if cfg.AddAt > 0 {
		total++
	}
	backends := make([]*Host, total)
	for i := range backends {
		backends[i] = n.Host(fmt.Sprintf("be%d", i), fmt.Sprintf("10.0.1.%d", i+1), cfg.Arch)
	}
	clients := make([]*Host, cfg.Clients)
	for j := range clients {
		clients[j] = n.Host(fmt.Sprintf("cli%d", j), fmt.Sprintf("10.0.2.%d", j+1), cfg.Arch)
	}

	specs := make([]BackendSpec, cfg.Backends)
	for i := range specs {
		specs[i] = BackendSpec{Host: backends[i], Port: lbBackPort}
	}
	vip, err := lb.InstallVIP(lbVIPAddr, lbVIPPort, specs...)
	if err != nil {
		return nil, err
	}

	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Backends: serve request/response exchanges until a quit request
	// arrives. Responses carry the backend's name so clients can account
	// serves per pool member.
	for i, h := range backends {
		i, h := i, h
		app := h.NewApp("backend")
		h.Spawn(fmt.Sprintf("be%d", i), func(t *Thread) {
			ls, err := app.Socket(t, SockStream)
			if err != nil {
				fail(err)
				return
			}
			if err := app.Bind(t, ls, SockAddr{Port: lbBackPort}); err != nil {
				fail(err)
				return
			}
			app.Listen(t, ls, 64)
			req := make([]byte, cfg.MsgBytes)
			resp := make([]byte, cfg.MsgBytes)
			copy(resp, h.Name())
			for {
				fd, _, err := app.Accept(t, ls)
				if err != nil {
					fail(err)
					return
				}
				got := 0
				dead := false
				for got < cfg.MsgBytes {
					n, err := app.Recv(t, fd, req[got:], 0)
					if err != nil || n == 0 {
						dead = true // client reset under churn; keep serving
						break
					}
					got += n
				}
				if !dead {
					if req[0] == lbQuitByte {
						app.Close(t, fd)
						break
					}
					// A send error here means the client was reset under
					// churn; the connection is already accounted failed on
					// the client side.
					_, _ = app.Send(t, fd, resp, 0)
				}
				app.Close(t, fd)
			}
			app.Close(t, ls)
		})
	}

	// Pool-churn controller on the load balancer's shard.
	if cfg.KillAt > 0 || cfg.AddAt > 0 {
		lb.Spawn("pool-ctl", func(t *Thread) {
			if cfg.KillAt > 0 {
				t.Sleep(cfg.KillAt)
				vip.KillBackend(0)
			}
			if cfg.AddAt > 0 {
				if d := cfg.AddAt - cfg.KillAt; d > 0 {
					t.Sleep(d)
				}
				nb := backends[total-1]
				vip.AddBackend(PoolBackend{
					Name: nb.Name(), IP: nb.ip, Port: lbBackPort, MAC: nb.kern.NIC.MAC(),
				})
			}
		})
	}

	// Clients: sequential connections through the VIP, tolerating (and
	// counting) failures during the churn window.
	rep := &LBReport{ConnsPlan: cfg.Clients * cfg.ConnsPerClient, BackendServed: make([]int64, total)}
	backendIdx := func(name string) int {
		for i, b := range backends {
			if b.Name() == name {
				return i
			}
		}
		return -1
	}
	for j, h := range clients {
		j, h := j, h
		app := h.NewApp("client")
		h.Spawn(fmt.Sprintf("cli%d", j), func(t *Thread) {
			t.Sleep(time.Duration(j) * 5 * time.Millisecond)
			req := make([]byte, cfg.MsgBytes)
			copy(req, fmt.Sprintf("req cli%d", j))
			buf := make([]byte, cfg.MsgBytes)
			for k := 0; k < cfg.ConnsPerClient; k++ {
				if k > 0 {
					t.Sleep(cfg.ConnGap)
				}
				fd, err := app.Socket(t, SockStream)
				if err != nil {
					fail(err)
					return
				}
				oneConn := func() bool {
					if err := app.Connect(t, fd, Addr(lbVIPAddr, lbVIPPort)); err != nil {
						return false
					}
					if _, err := app.Send(t, fd, req, 0); err != nil {
						return false
					}
					got := 0
					for got < cfg.MsgBytes {
						n, err := app.Recv(t, fd, buf[got:], 0)
						if err != nil || n == 0 {
							return false
						}
						got += n
					}
					return true
				}
				if oneConn() {
					rep.Served++
					name := string(buf)
					if z := strings.IndexByte(name, 0); z >= 0 {
						name = name[:z]
					}
					if bi := backendIdx(name); bi >= 0 {
						rep.BackendServed[bi]++
					} else {
						fail(fmt.Errorf("lb: response named unknown backend %q", name))
					}
				} else {
					rep.Failed++
				}
				app.Close(t, fd)
			}
		})
	}

	// Quitter: after every client finishes, tell each backend directly
	// (not through the VIP) to stop serving, so their accept loops exit.
	// Clients' threads are tracked by Run; we order the quitter after
	// them with a generous sleep past the workload's worst-case span.
	span := time.Duration(cfg.Clients)*5*time.Millisecond +
		time.Duration(cfg.ConnsPerClient)*(cfg.ConnGap+200*time.Millisecond) +
		5*time.Second
	qapp := clients[0].NewApp("quitter")
	clients[0].Spawn("quitter", func(t *Thread) {
		t.Sleep(span)
		req := make([]byte, cfg.MsgBytes)
		req[0] = lbQuitByte
		for i, b := range backends {
			fd, err := qapp.Socket(t, SockStream)
			if err != nil {
				fail(err)
				return
			}
			if err := qapp.Connect(t, fd, b.Addr(lbBackPort)); err != nil {
				fail(fmt.Errorf("lb: quit be%d: %w", i, err))
				return
			}
			if _, err := qapp.Send(t, fd, req, 0); err != nil {
				fail(err)
			}
			qapp.Close(t, fd)
		}
	})

	if err := n.Run(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := n.RunFor(cfg.Drain); err != nil {
		return nil, err
	}

	plane := lb.Dataplane()
	rep.LBConns = int64(plane.Stats.LBConns.Value())
	rep.Rehomed = int64(plane.Stats.LBRehomed.Value())
	rep.Resets = int64(plane.Stats.LBResets.Value())
	rep.Refused = int64(plane.Stats.LBRefused.Value())
	rep.CTCreated = int64(plane.Stats.CTCreated.Value())
	rep.CTExpired = int64(plane.Stats.CTExpired.Value())
	rep.FlowsLeft = int64(plane.FlowCount())
	rep.SNATLeft = int64(plane.SNATInUse())
	rep.Snapshot = n.MetricsSnapshot()
	return rep, nil
}
