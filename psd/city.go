package psd

import (
	"fmt"
	"sync"
	"time"
)

// CityConfig parameterizes the internet-scale sharded workload: many
// routed districts, each its own Ethernet segment behind a district
// router, joined to a backbone router over point-to-point trunks. Each
// district runs the connection-churn echo workload; a configurable
// fraction of connections crosses districts, so traffic exercises the
// trunk (and, in sharded runs, the conservative cross-shard
// synchronization) continuously.
//
// Districts are placed round-robin on the configured shards; the
// backbone router and every trunk's backbone end live on shard 0.
// Acceptance is expressed as conservation laws over the metrics
// registry and the trunk direction counters (see CityReport.Check).
type CityConfig struct {
	Seed               int64
	Districts          int
	ServersPerDistrict int
	ClientsPerDistrict int
	ConnsPerClient     int // sequential connections per client
	CrossEvery         int // every Nth connection targets another district (0 = all local)
	OrphanEvery        int // every Nth client exits without closing its last conn (0 = none)
	MsgBytes           int // payload echoed once per connection
	Arch               Arch

	// Shards selects group mode (see Config.Shards); 0 runs the same
	// topology on the classic single event loop — the baseline sharded
	// runs are measured against.
	Shards         int
	SingleThreaded bool

	// TrunkProp is the trunk propagation delay, i.e. the group
	// lookahead (0 = 1 ms). Larger values widen the synchronization
	// windows.
	TrunkProp time.Duration

	Drain time.Duration // virtual drain after the workload (0 = 75 s)

	// Trace forwards to Config.Trace, for equivalence tests that diff
	// full traces between runs.
	Trace      []TraceLayer
	TraceLimit int
}

// DefaultCity is a four-district scale point small enough for tests.
func DefaultCity(seed int64, shards int) CityConfig {
	return CityConfig{
		Seed:               seed,
		Districts:          4,
		ServersPerDistrict: 2,
		ClientsPerDistrict: 6,
		ConnsPerClient:     3,
		CrossEvery:         2,
		OrphanEvery:        7,
		MsgBytes:           256,
		Arch:               Decomposed(),
		Shards:             shards,
	}
}

// TrunkDirDigest is the frame ledger of one trunk direction, used by
// the conservation checks: everything the direction serialized must be
// accounted for as a delivery or an attributed drop, and everything
// delivered must have been received on the far end.
type TrunkDirDigest struct {
	Name      string `json:"name"`
	Sent      uint64 `json:"sent"`
	Dup       uint64 `json:"dup"`
	Delivered uint64 `json:"delivered"`
	PeerRecv  uint64 `json:"peer_recv"`
	Drops     uint64 `json:"drops"` // loss + down + malformed
	PartDrops uint64 `json:"part_drops"`
}

// CityReport is the registry-derived outcome of a city run.
type CityReport struct {
	Churn CityChurnLaws `json:"churn"`

	Hosts     int `json:"hosts"`
	Districts int `json:"districts"`
	Shards    int `json:"shards"`
	ConnsPlan int `json:"conns_planned"`

	Trunks []TrunkDirDigest `json:"trunks"`

	// DispatchedTotal is the group's event count; DispatchedPerShard
	// must sum to it (classic runs have one implicit shard).
	DispatchedTotal    uint64   `json:"dispatched_total"`
	DispatchedPerShard []uint64 `json:"dispatched_per_shard"`
	Windows            uint64   `json:"windows"`

	Snapshot *MetricsSnapshot `json:"-"`

	// Trace is the run's flight recorder when CityConfig.Trace was set
	// (nil otherwise); equivalence tests diff its merged records.
	Trace *Recorder `json:"-"`
}

// CityChurnLaws are the churn conservation quantities, summed over
// every district's hosts.
type CityChurnLaws struct {
	ConnSetups     int64 `json:"conn_setups"`
	ConnTeardowns  int64 `json:"conn_teardowns"`
	OrphansAborted int64 `json:"orphans_aborted"`
	SessionsMade   int64 `json:"sessions_made"`
	SessionsReaped int64 `json:"sessions_reaped"`
	LiveSessions   int64 `json:"live_sessions"`
	PortsInUse     int64 `json:"ports_in_use"`
	TimeWait       int64 `json:"time_wait"`
}

// Check verifies the run's conservation laws:
//
//   - connection/session/port accounting balances and leaves no residue
//     (the churn laws),
//   - every frame a trunk direction serialized is accounted for:
//     sent + duplicated == delivered + drops-with-cause,
//   - every delivered frame was received on the peer shard,
//   - the per-shard dispatch counters sum to the group total.
func (r *CityReport) Check() error {
	c := &r.Churn
	if want := int64(2 * r.ConnsPlan); c.ConnSetups < want {
		return fmt.Errorf("city: %d connection setups, want >= %d", c.ConnSetups, want)
	}
	if c.ConnSetups != c.ConnTeardowns+c.OrphansAborted {
		return fmt.Errorf("city: setups %d != teardowns %d + orphans aborted %d",
			c.ConnSetups, c.ConnTeardowns, c.OrphansAborted)
	}
	if c.SessionsMade != c.SessionsReaped {
		return fmt.Errorf("city: sessions made %d != reaped %d", c.SessionsMade, c.SessionsReaped)
	}
	if c.LiveSessions != 0 || c.PortsInUse != 0 || c.TimeWait != 0 {
		return fmt.Errorf("city: residue after drain: %d sessions, %d ports, %d time-wait",
			c.LiveSessions, c.PortsInUse, c.TimeWait)
	}
	for _, d := range r.Trunks {
		if d.Sent+d.Dup != d.Delivered+d.Drops+d.PartDrops {
			return fmt.Errorf("city: trunk %s: sent %d + dup %d != delivered %d + drops %d + partition %d",
				d.Name, d.Sent, d.Dup, d.Delivered, d.Drops, d.PartDrops)
		}
		if d.Delivered != d.PeerRecv {
			return fmt.Errorf("city: trunk %s: delivered %d != peer received %d", d.Name, d.Delivered, d.PeerRecv)
		}
	}
	var sum uint64
	for _, v := range r.DispatchedPerShard {
		sum += v
	}
	if sum != r.DispatchedTotal {
		return fmt.Errorf("city: per-shard dispatch counters sum to %d, group total is %d", sum, r.DispatchedTotal)
	}
	return nil
}

// districtCIDR carves districts out of 10/8: /24 per district, gateway
// at .1, hosts from .2. Supports up to 250 hosts per district and
// thousands of districts.
func districtCIDR(d int) (cidr, gw string) {
	hi, lo := 1+d/250, d%250
	return fmt.Sprintf("10.%d.%d.0/24", hi, lo), fmt.Sprintf("10.%d.%d.1", hi, lo)
}

func districtHostAddr(d, i int) string {
	hi, lo := 1+d/250, d%250
	return fmt.Sprintf("10.%d.%d.%d", hi, lo, i+2)
}

// trunkCIDR carves /30s out of 172.16/12: backbone end at .1 inside
// the /30, district end at .2.
func trunkCIDR(d int) (cidr, bbAddr, distAddr string) {
	hi, lo := 16+d/64, (d%64)*4
	return fmt.Sprintf("172.%d.%d.%d/30", hi, lo, 0),
		fmt.Sprintf("172.%d.%d.%d", hi, lo, 1),
		fmt.Sprintf("172.%d.%d.%d", hi, lo, 2)
}

// RunCity builds the districted topology, runs the workload to
// completion plus the drain period, and reads the registry and trunk
// ledgers into a report. Deterministic for a given config — and
// identical for every shard count and threading mode, which the
// equivalence tests in shard_test.go verify byte for byte.
func RunCity(cfg CityConfig) (*CityReport, error) {
	n, err := buildCity(&cfg)
	if err != nil {
		return nil, err
	}
	return runCity(n, cfg)
}

// cityNet carries the built topology into the workload driver.
type cityNet struct {
	net     *Network
	servers [][]*Host // [district][i]
	clients [][]*Host
	expect  [][]int // accepts expected per [district][server]
}

func buildCity(cfg *CityConfig) (*cityNet, error) {
	if cfg.Districts <= 0 {
		return nil, fmt.Errorf("city: Districts must be positive")
	}
	if cfg.ServersPerDistrict <= 0 || cfg.ClientsPerDistrict < 0 {
		return nil, fmt.Errorf("city: need at least one server per district")
	}
	if cfg.ServersPerDistrict+cfg.ClientsPerDistrict > 250 {
		return nil, fmt.Errorf("city: at most 250 hosts per district (/24 addressing)")
	}
	if cfg.MsgBytes <= 0 {
		cfg.MsgBytes = 512
	}
	if cfg.TrunkProp <= 0 {
		cfg.TrunkProp = time.Millisecond
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 75 * time.Second
	}
	n := NewConfig(Config{
		Seed: cfg.Seed, Metrics: true,
		Shards: cfg.Shards, SingleThreaded: cfg.SingleThreaded,
		Trace: cfg.Trace, TraceLimit: cfg.TraceLimit,
	})
	c := &cityNet{net: n}

	backbone := n.NewRouterOn(0, "bb")
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	for d := 0; d < cfg.Districts; d++ {
		shard := 0
		if cfg.Shards > 0 {
			shard = d % shards
		}
		cidr, gw := districtCIDR(d)
		sub := n.NewSubnetOn(shard, fmt.Sprintf("d%d", d), cidr)
		rtr := n.NewRouterOn(shard, fmt.Sprintf("r%d", d))
		rtr.Attach(sub, gw)

		tcidr, bbAddr, distAddr := trunkCIDR(d)
		trunk := n.NewTrunk(fmt.Sprintf("t%d", d), tcidr, cfg.TrunkProp)
		trunk.Attach(backbone, bbAddr).Attach(rtr, distAddr)
		if err := backbone.AddRoute(cidr, distAddr); err != nil {
			return nil, err
		}
		if err := rtr.AddRoute("0.0.0.0/0", bbAddr); err != nil {
			return nil, err
		}

		srvs := make([]*Host, cfg.ServersPerDistrict)
		for i := range srvs {
			srvs[i] = sub.Host(fmt.Sprintf("d%ds%d", d, i), districtHostAddr(d, i), cfg.Arch)
		}
		clis := make([]*Host, cfg.ClientsPerDistrict)
		for j := range clis {
			clis[j] = sub.Host(fmt.Sprintf("d%dc%d", d, j),
				districtHostAddr(d, cfg.ServersPerDistrict+j), cfg.Arch)
		}
		c.servers = append(c.servers, srvs)
		c.clients = append(c.clients, clis)
	}

	// The connection plan is a pure function of the config: client j of
	// district d aims connection k at district target(d,j,k), server
	// (j+k) mod servers. Every server knows its accept count up front.
	c.expect = make([][]int, cfg.Districts)
	for d := range c.expect {
		c.expect[d] = make([]int, cfg.ServersPerDistrict)
	}
	for d := 0; d < cfg.Districts; d++ {
		for j := 0; j < cfg.ClientsPerDistrict; j++ {
			for k := 0; k < cfg.ConnsPerClient; k++ {
				td, ts := cityTarget(cfg, d, j, k)
				c.expect[td][ts]++
			}
		}
	}
	return c, nil
}

// cityTarget picks the (district, server) a connection aims at. Cross
// connections rotate through the other districts so every trunk
// carries traffic in both directions.
func cityTarget(cfg *CityConfig, d, j, k int) (td, ts int) {
	td = d
	if cfg.CrossEvery > 0 && cfg.Districts > 1 && (k+1)%cfg.CrossEvery == 0 {
		td = (d + 1 + (j+k)%(cfg.Districts-1)) % cfg.Districts
	}
	return td, (j + k) % cfg.ServersPerDistrict
}

func runCity(c *cityNet, cfg CityConfig) (*CityReport, error) {
	n := c.net

	// Workload errors surface on whichever shard hits them first; the
	// mutex makes collection race-safe and the winner is re-picked
	// deterministically (lowest district, then index) after the run.
	type werr struct {
		d, j int
		err  error
	}
	var (
		mu   sync.Mutex
		errs []werr
	)
	fail := func(d, j int, err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, werr{d, j, err})
		mu.Unlock()
	}

	for d := range c.servers {
		for i, h := range c.servers[d] {
			d, i, h := d, i, h
			app := h.NewApp("echo")
			h.Spawn(h.Name(), func(t *Thread) {
				ls, err := app.Socket(t, SockStream)
				if err != nil {
					fail(d, i, err)
					return
				}
				if err := app.Bind(t, ls, SockAddr{Port: churnPort}); err != nil {
					fail(d, i, err)
					return
				}
				app.Listen(t, ls, 64)
				buf := make([]byte, cfg.MsgBytes)
				for served := 0; served < c.expect[d][i]; served++ {
					fd, _, err := app.Accept(t, ls)
					if err != nil {
						fail(d, i, err)
						return
					}
					got := 0
					for got < cfg.MsgBytes {
						n, err := app.Recv(t, fd, buf[got:], 0)
						if err != nil || n == 0 {
							break // client died mid-stream; still count it served
						}
						got += n
					}
					if got == cfg.MsgBytes {
						if _, err := app.Send(t, fd, buf, 0); err != nil {
							fail(d, i, err)
						}
					}
					app.Close(t, fd)
				}
				app.Close(t, ls)
			})
		}
	}

	msg := make([]byte, cfg.MsgBytes)
	for b := range msg {
		msg[b] = byte(b)
	}
	for d := range c.clients {
		for j, h := range c.clients[d] {
			d, j, h := d, j, h
			global := d*cfg.ClientsPerDistrict + j
			orphan := cfg.OrphanEvery > 0 && (global+1)%cfg.OrphanEvery == 0
			app := h.NewApp("churn")
			h.Spawn(h.Name(), func(t *Thread) {
				// Stagger starts within the district so the SYN burst
				// stays inside listen backlogs.
				t.Sleep(time.Duration(j) * 3 * time.Millisecond)
				for k := 0; k < cfg.ConnsPerClient; k++ {
					td, ts := cityTarget(&cfg, d, j, k)
					srv := c.servers[td][ts]
					fd, err := app.Socket(t, SockStream)
					if err != nil {
						fail(d, j, err)
						return
					}
					if err := app.Connect(t, fd, srv.Addr(churnPort)); err != nil {
						fail(d, j, fmt.Errorf("d%dc%d conn %d: %w", d, j, k, err))
						return
					}
					if _, err := app.Send(t, fd, msg, 0); err != nil {
						fail(d, j, err)
						return
					}
					buf := make([]byte, cfg.MsgBytes)
					got := 0
					for got < cfg.MsgBytes {
						n, err := app.Recv(t, fd, buf[got:], 0)
						if err != nil {
							fail(d, j, err)
							return
						}
						if n == 0 {
							fail(d, j, fmt.Errorf("d%dc%d conn %d: premature EOF", d, j, k))
							return
						}
						got += n
					}
					if orphan && k == cfg.ConnsPerClient-1 {
						// Die with the connection open: the host's OS
						// server must abort the orphan and quarantine
						// the port.
						app.ExitProcess(t)
						return
					}
					app.Close(t, fd)
				}
			})
		}
	}

	if err := n.Run(); err != nil {
		return nil, err
	}
	if len(errs) > 0 {
		first := errs[0]
		for _, e := range errs[1:] {
			if e.d < first.d || (e.d == first.d && e.j < first.j) {
				first = e
			}
		}
		return nil, first.err
	}
	if err := n.RunFor(cfg.Drain); err != nil {
		return nil, err
	}

	snap := n.MetricsSnapshot()
	rep := &CityReport{
		Hosts:     cfg.Districts * (cfg.ServersPerDistrict + cfg.ClientsPerDistrict),
		Districts: cfg.Districts,
		Shards:    cfg.Shards,
		ConnsPlan: cfg.Districts * cfg.ClientsPerDistrict * cfg.ConnsPerClient,
		Churn: CityChurnLaws{
			ConnSetups:     snap.Sum(".core.conn_setup"),
			ConnTeardowns:  snap.Sum(".core.conn_teardown"),
			OrphansAborted: snap.Sum(".core.orphans_aborted"),
			SessionsMade:   snap.Sum(".core.sessions_made"),
			SessionsReaped: snap.Sum(".core.sessions_reaped"),
			LiveSessions:   snap.Sum(".core.sessions"),
			PortsInUse:     snap.Sum(".core.ports_in_use"),
			TimeWait:       snap.Sum(".tcp_state.time_wait"),
		},
		Snapshot: snap,
		Trace:    n.Trace(),
	}
	for _, tr := range n.Trunks() {
		dirs := tr.Directions()
		for i, nic := range dirs {
			peer := dirs[1-i]
			st := nic.DirStats()
			rep.Trunks = append(rep.Trunks, TrunkDirDigest{
				Name:      nic.Name(),
				Sent:      st.FramesSent.Value(),
				Dup:       st.FramesDup.Value(),
				Delivered: st.DeliveryEvents.Value(),
				PeerRecv:  peer.RxFrames.Value(),
				Drops:     st.FramesDropped(),
				PartDrops: st.PartitionDrops.Value(),
			})
		}
	}
	if g := n.Group(); g != nil {
		total, per := g.Dispatched()
		rep.DispatchedTotal, rep.DispatchedPerShard = total, per
		rep.Windows = g.Windows()
	} else {
		rep.DispatchedTotal = n.Sim().Dispatched()
		rep.DispatchedPerShard = []uint64{rep.DispatchedTotal}
	}
	return rep, nil
}
