package psd

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestProfCity is a profiling harness, enabled only via PROF_HOSTS:
//
//	PROF_HOSTS=2500 PROF_SHARDS=1 go test ./psd -run TestProfCity -cpuprofile cpu.prof
func TestProfCity(t *testing.T) {
	hostsEnv := os.Getenv("PROF_HOSTS")
	if hostsEnv == "" {
		t.Skip("set PROF_HOSTS to enable")
	}
	hosts, _ := strconv.Atoi(hostsEnv)
	shards, _ := strconv.Atoi(os.Getenv("PROF_SHARDS"))
	districts := hosts / 100
	if districts < 1 {
		districts = 1
	}
	cfg := CityConfig{
		Seed:               1,
		Districts:          districts,
		ServersPerDistrict: 10,
		ClientsPerDistrict: 90,
		ConnsPerClient:     1,
		CrossEvery:         4,
		OrphanEvery:        16,
		MsgBytes:           256,
		Arch:               Decomposed(),
		Shards:             shards,
		TrunkProp:          time.Millisecond,
	}
	start := time.Now()
	rep, err := RunCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hosts=%d shards=%d events=%d real=%v", rep.Hosts, shards, rep.DispatchedTotal, time.Since(start))
}
