package psd

import (
	"encoding/json"
	"testing"
)

// scenarioArchs pairs every architecture with its report label; the
// scenario suite must hold on all three.
var scenarioArchs = []struct {
	name string
	arch Arch
}{
	{"decomposed", Decomposed()},
	{"inkernel", InKernel()},
	{"server", ServerBased()},
}

// TestScenarioSuite is the CI gate: every named scenario meets its SLOs
// on every architecture. A failure prints the full SLO report so the
// offending bound is visible without re-running.
func TestScenarioSuite(t *testing.T) {
	for _, name := range ScenarioNames() {
		for _, a := range scenarioArchs {
			t.Run(name+"/"+a.name, func(t *testing.T) {
				res, err := RunScenario(ScenarioConfig{
					Name: name, Seed: 1, Arch: a.arch, ArchName: a.name,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Requests == 0 {
					t.Fatal("scenario completed zero requests")
				}
				if !res.Passed {
					for _, r := range res.SLO {
						t.Log(r.String())
					}
					t.Fatalf("%s/%s failed its SLOs (req=%d err=%d p99=%dns)",
						name, a.name, res.Requests, res.Errors, res.ReqP99Ns)
				}
			})
		}
	}
}

// TestScenarioDeterminism runs one scenario per architecture twice with
// the same seed and requires byte-identical JSON verdicts: quantiles,
// drop counts, SLO details, virtual time — everything.
func TestScenarioDeterminism(t *testing.T) {
	for _, a := range scenarioArchs {
		t.Run(a.name, func(t *testing.T) {
			cfg := ScenarioConfig{Name: "heavy-tail", Seed: 7, Arch: a.arch, ArchName: a.name}
			run := func() []byte {
				res, err := RunScenario(cfg)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			first, second := run(), run()
			if string(first) != string(second) {
				t.Fatalf("verdict not byte-stable:\n%s\n%s", first, second)
			}
		})
	}
}

// TestScenarioSeedSensitivity checks the seed actually reaches the
// traffic generators: different seeds must produce different latency
// profiles (same structure, different draws).
func TestScenarioSeedSensitivity(t *testing.T) {
	r1, err := RunScenario(ScenarioConfig{Name: "heavy-tail", Seed: 1, Arch: InKernel()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(ScenarioConfig{Name: "heavy-tail", Seed: 2, Arch: InKernel()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReqP50Ns == r2.ReqP50Ns && r1.ReqP99Ns == r2.ReqP99Ns && r1.SimNs == r2.SimNs {
		t.Fatal("seeds 1 and 2 produced identical profiles; seed is not plumbed through")
	}
}

// TestScenarioUnknownName rejects typos instead of silently passing.
func TestScenarioUnknownName(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Name: "no-such", Arch: InKernel()}); err == nil {
		t.Fatal("want error for unknown scenario")
	}
}

// TestScenarioPartitionEvidence digs into the partition scenario's
// verdict: the fault plan must have produced observable drops and TCP
// must have retransmitted through the outage on every architecture.
func TestScenarioPartitionEvidence(t *testing.T) {
	for _, a := range scenarioArchs {
		res, err := RunScenario(ScenarioConfig{Name: "partition", Seed: 1, Arch: a.arch, ArchName: a.name})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed {
			t.Fatalf("%s: partition scenario failed", a.name)
		}
		if res.NetDrops == 0 {
			t.Errorf("%s: link cut produced no drops", a.name)
		}
		if res.TCPRexmits == 0 {
			t.Errorf("%s: no retransmissions through the outage", a.name)
		}
	}
}
