package psd_test

import (
	"testing"

	"repro/psd"
)

// BenchmarkCityWindows measures heap churn of the sharded window loop:
// one full DefaultCity run on four shards (single-threaded, so the
// numbers are stable). allocs/op is the figure that matters — the
// periodic protocol timers on every host must not allocate in steady
// state, or they dominate the profile at city scale.
func BenchmarkCityWindows(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := psd.DefaultCity(7, 4)
		cfg.SingleThreaded = true
		if _, err := psd.RunCity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
