package psd

import (
	"fmt"
	"testing"
	"time"
)

// TestLBConservation runs the VIP churn workload — kill one backend
// mid-run, add a fresh one — on every architecture column and checks
// the conservation laws: each client connection served by exactly one
// backend or visibly failed, zero leaked flows, zero leaked SNAT ports.
func TestLBConservation(t *testing.T) {
	for _, f := range ArchFlavors() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			cfg := DefaultLB(7)
			cfg.Arch = f.New()
			rep, err := RunLB(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Check(); err != nil {
				t.Fatal(err)
			}
			if rep.Rehomed+rep.Resets == 0 {
				t.Errorf("backend kill at %v left no trace: rehomed=0 resets=0", cfg.KillAt)
			}
			// The added backend must actually receive traffic: it owns
			// ~1/3 of the Maglev table for the second half of the run.
			if rep.BackendServed[len(rep.BackendServed)-1] == 0 {
				t.Errorf("added backend served 0 connections; per-backend %v", rep.BackendServed)
			}
			if rep.Failed > int64(rep.ConnsPlan)/2 {
				t.Errorf("churn failed %d of %d connections (kill window should cost only in-flight conns)",
					rep.Failed, rep.ConnsPlan)
			}
		})
	}
}

// TestLBNoChurn is the steady-state sanity point: no kill, no add —
// every connection must be served and spread across the whole pool.
func TestLBNoChurn(t *testing.T) {
	cfg := DefaultLB(3)
	cfg.KillAt, cfg.AddAt = 0, 0
	rep, err := RunLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("steady state failed %d connections", rep.Failed)
	}
	for i, c := range rep.BackendServed {
		if c == 0 {
			t.Errorf("backend %d served 0 of %d connections (Maglev spread broken)", i, rep.Served)
		}
	}
	if rep.LBConns != int64(rep.ConnsPlan) {
		t.Errorf("plane admitted %d connections, want %d", rep.LBConns, rep.ConnsPlan)
	}
}

// TestLBDeterminism runs the identical churn config twice per
// architecture and requires byte-identical registry snapshots — the
// stateful tables (conntrack, SNAT allocator, Maglev pool) must not
// leak map-iteration or wall-clock nondeterminism into anything
// observable. CI re-runs this battery with -count=2.
func TestLBDeterminism(t *testing.T) {
	for _, f := range ArchFlavors() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			digest := func() string {
				cfg := DefaultLB(11)
				cfg.Arch = f.New()
				rep, err := RunLB(cfg)
				if err != nil {
					t.Fatal(err)
				}
				out := fmt.Sprintf("served=%d failed=%d per-backend=%v rehomed=%d resets=%d\n",
					rep.Served, rep.Failed, rep.BackendServed, rep.Rehomed, rep.Resets)
				for _, it := range rep.Snapshot.Items {
					out += fmt.Sprintf("%s %v\n", it.Name, it.Value)
				}
				return out
			}
			a, b := digest(), digest()
			if a != b {
				t.Fatalf("two identical runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestLBFlowPinning verifies session affinity directly: with a long-
// lived conntrack entry in place, resizing the pool must not move the
// pinned flow (AddBackend never rewrites existing NAT state).
func TestLBFlowPinning(t *testing.T) {
	cfg := DefaultLB(5)
	cfg.KillAt = 0 // only grow the pool
	cfg.AddAt = 200 * time.Millisecond
	rep, err := RunLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("pool growth broke %d connections (pinned flows must survive a resize)", rep.Failed)
	}
	if rep.Resets != 0 || rep.Rehomed != 0 {
		t.Fatalf("pool growth reset %d / rehomed %d flows; AddBackend must not touch existing state",
			rep.Resets, rep.Rehomed)
	}
}
