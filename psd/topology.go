package psd

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stack"
	"repro/internal/wire"
)

// RouterQueue configures a router port's finite egress queue and its
// RED (random early detection) drop behaviour. The zero value selects
// the defaults (capacity 32, RED between 1/4 and 3/4 occupancy).
type RouterQueue = router.QueueConfig

// Subnet is one routed Ethernet segment inside a Network: its own
// collision domain, bit rate, fault-injection scope, and a route table
// shared by every host attached to it. Hosts on different subnets reach
// each other through Routers.
type Subnet struct {
	net       *Network
	name      string
	sim       *sim.Sim
	seg       *simnet.Segment
	prefix    wire.IPAddr
	prefixLen int
	routes    *stack.RouteTable
	gw        wire.IPAddr
	hasGW     bool
}

// NewSubnet creates a routed segment on shard 0. cidr is the subnet
// prefix in "10.1.0.0/24" form; every host attached with Subnet.Host
// must carry an address inside it. Hosts get an on-link route for the
// prefix and, once a router attaches, a default route through the
// first router port.
func (n *Network) NewSubnet(name, cidr string) *Subnet {
	return n.NewSubnetOn(0, name, cidr)
}

// NewSubnetOn creates a routed segment owned by the given shard. A
// shared segment is one collision domain and must live wholly on one
// shard: its hosts and router ports land there too. Shards are joined
// only by trunks (NewTrunk).
func (n *Network) NewSubnetOn(shard int, name, cidr string) *Subnet {
	prefix, plen, err := ParseCIDR(cidr)
	if err != nil {
		panic(err)
	}
	ssim := n.shardSim(shard)
	seg := simnet.NewSegment(ssim)
	if n.reg != nil {
		seg.SetMetrics(n.reg.Scope("net." + name))
	}
	if n.rec != nil {
		seg.SetTrace(n.lane(ssim))
	}
	rt := stack.NewRouteTable()
	rt.Add(prefix, plen, wire.IPAddr{}, true)
	s := &Subnet{
		net:       n,
		name:      name,
		sim:       ssim,
		seg:       seg,
		prefix:    prefix.Mask(plen),
		prefixLen: plen,
		routes:    rt,
	}
	n.subnets = append(n.subnets, s)
	return s
}

// Name returns the subnet name.
func (s *Subnet) Name() string { return s.name }

// CIDR returns the subnet prefix in "10.1.0.0/24" form.
func (s *Subnet) CIDR() string { return fmt.Sprintf("%v/%d", s.prefix, s.prefixLen) }

// Host attaches a machine to the subnet; addr must fall inside the
// subnet's prefix.
func (s *Subnet) Host(name, addr string, arch Arch) *Host {
	ip, err := ParseIP(addr)
	if err != nil {
		panic(err)
	}
	if ip.Mask(s.prefixLen) != s.prefix {
		panic(fmt.Sprintf("psd: host %s address %s is outside subnet %s (%s)", name, addr, s.name, s.CIDR()))
	}
	return s.net.hostOn(s.sim, s.seg, s.routes, name, addr, arch)
}

// Segment exposes the subnet's raw Ethernet segment for monitoring.
func (s *Subnet) Segment() *simnet.Segment { return s.seg }

// SetBitRate changes the subnet's link speed (default 10 Mb/s). Slower
// uplink subnets are how scenarios create router-queue pressure.
func (s *Subnet) SetBitRate(bps int64) { s.seg.SetBitRate(bps) }

// Faults returns the subnet's fault injector. Host names and router
// port names ("<router>.<subnet>") are the link names.
func (s *Subnet) Faults() *fault.Injector { return s.seg.Faults() }

// ApplyFaultPlan schedules a compact-text fault plan on this subnet.
func (s *Subnet) ApplyFaultPlan(text string) error {
	plan, err := fault.ParsePlan(text)
	if err != nil {
		return err
	}
	s.seg.Faults().Schedule(plan)
	return nil
}

// Gateway returns the subnet's default-gateway address (the first
// router port attached), or false if no router has attached yet.
func (s *Subnet) Gateway() (wire.IPAddr, bool) { return s.gw, s.hasGW }

// Router forwards IP packets between subnets: longest-prefix routing,
// TTL decrement, ICMP time-exceeded/unreachable generation, and finite
// RED-managed egress queues per port.
type Router struct {
	net *Network
	r   *router.Router
	// Queue is applied to ports attached after it is set; the zero
	// value means the RED defaults.
	Queue RouterQueue
}

// NewRouter creates a router on shard 0; call Attach to join it to
// subnets.
func (n *Network) NewRouter(name string) *Router {
	return n.NewRouterOn(0, name)
}

// NewRouterOn creates a router owned by the given shard. A router may
// only attach to subnets on its own shard; it reaches other shards
// over trunks.
func (n *Network) NewRouterOn(shard int, name string) *Router {
	r := &Router{net: n, r: router.New(n.shardSim(shard), name)}
	if n.reg != nil {
		r.r.BindMetrics(n.reg.Scope("router." + name))
	}
	n.routers = append(n.routers, r)
	return r
}

// Name returns the router name.
func (r *Router) Name() string { return r.r.Name() }

// Attach joins the router to a subnet with the given port address. The
// first router port on a subnet becomes the subnet's default gateway:
// every host on it gets a 0.0.0.0/0 route through this port. The port's
// fault-injector link name is "<router>.<subnet>". Returns the router
// for chaining.
func (r *Router) Attach(s *Subnet, addr string) *Router {
	ip, err := ParseIP(addr)
	if err != nil {
		panic(err)
	}
	if ip.Mask(s.prefixLen) != s.prefix {
		panic(fmt.Sprintf("psd: router %s port %s is outside subnet %s (%s)", r.Name(), addr, s.name, s.CIDR()))
	}
	p := r.r.Attach(s.seg, s.name, r.net.nextMAC(), ip, s.prefixLen, r.Queue)
	if r.net.reg != nil {
		p.BindMetrics(r.net.reg.Scope("router." + r.Name() + ".port." + p.LinkName()))
	}
	if !s.hasGW {
		s.gw = ip
		s.hasGW = true
		s.routes.Add(wire.IPAddr{}, 0, ip, false)
	}
	return r
}

// Trunk is a point-to-point full-duplex link joining two routers,
// usually on different shards: its propagation delay is the shard
// group's conservative lookahead (delays below sim.MinLookahead clamp
// to it), and trunks are the only legal place to cut a sharded
// topology. Each direction has its own serialization medium, fault
// stream, counters, and trace lane, all single-writer on the sending
// or receiving shard.
type Trunk struct {
	net       *Network
	name      string
	seg       *simnet.Segment
	prefix    wire.IPAddr
	prefixLen int
	dirs      []*simnet.NIC // attach order
}

// NewTrunk creates a trunk link with its own small prefix (typically a
// /30) and propagation delay. Attach exactly two routers to it.
func (n *Network) NewTrunk(name, cidr string, prop time.Duration) *Trunk {
	prefix, plen, err := ParseCIDR(cidr)
	if err != nil {
		panic(err)
	}
	seg := simnet.NewTrunk(n.sim, prop)
	t := &Trunk{net: n, name: name, seg: seg, prefix: prefix.Mask(plen), prefixLen: plen}
	n.trunks = append(n.trunks, t)
	return t
}

// Name returns the trunk name.
func (t *Trunk) Name() string { return t.name }

// Prop returns the trunk's propagation delay after clamping.
func (t *Trunk) Prop() time.Duration { return t.seg.Prop() }

// Segment exposes the trunk's raw segment for monitoring.
func (t *Trunk) Segment() *simnet.Segment { return t.seg }

// Faults returns the trunk's fault injector. The two directions are
// the links, named "<router>.<trunk>".
func (t *Trunk) Faults() *fault.Injector { return t.seg.Faults() }

// Attach joins a router to the trunk with the given port address. The
// port lands on the router's own shard; the port's link name — and its
// metrics scope "trunk.<name>.<router>.<name>" — follow the router.
// Returns the trunk for chaining.
func (t *Trunk) Attach(r *Router, addr string) *Trunk {
	ip, err := ParseIP(addr)
	if err != nil {
		panic(err)
	}
	if ip.Mask(t.prefixLen) != t.prefix {
		panic(fmt.Sprintf("psd: router %s port %s is outside trunk %s (%v/%d)",
			r.Name(), addr, t.name, t.prefix, t.prefixLen))
	}
	n := t.net
	p := r.r.Attach(t.seg, t.name, n.nextMAC(), ip, t.prefixLen, r.Queue)
	nic := p.NIC()
	if n.reg != nil {
		nic.DirStats().Bind(n.reg.Scope("trunk." + t.name + "." + p.LinkName()))
		p.BindMetrics(n.reg.Scope("router." + r.Name() + ".port." + p.LinkName()))
	}
	if n.rec != nil {
		nic.SetTrace(n.lane(nic.Sim()))
	}
	t.dirs = append(t.dirs, nic)
	return t
}

// Directions returns the trunk's two attached stations in attach
// order (fewer while attachment is in progress).
func (t *Trunk) Directions() []*simnet.NIC { return t.dirs }

// Trunks returns the network's trunks in creation order.
func (n *Network) Trunks() []*Trunk { return n.trunks }

// AddRoute installs a static route on the router: destinations in cidr
// go through gateway via, which must be on one of the router's attached
// subnets. Used to chain routers into multi-hop paths.
func (r *Router) AddRoute(cidr, via string) error {
	dest, plen, err := ParseCIDR(cidr)
	if err != nil {
		return err
	}
	gw, err := ParseIP(via)
	if err != nil {
		return err
	}
	return r.r.AddRoute(dest, plen, gw)
}

// Stats exposes the router's forwarding counters.
func (r *Router) Stats() *router.Stats { return &r.r.Stats }

// Ports returns the router's ports in attach order.
func (r *Router) Ports() []*router.Port { return r.r.Ports() }

// ParseCIDR parses "10.1.0.0/24" into a masked prefix and length.
func ParseCIDR(s string) (wire.IPAddr, int, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return wire.IPAddr{}, 0, fmt.Errorf("psd: bad CIDR %q (want a.b.c.d/len)", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return wire.IPAddr{}, 0, err
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return wire.IPAddr{}, 0, fmt.Errorf("psd: bad CIDR %q (prefix length)", s)
	}
	return ip.Mask(plen), plen, nil
}

// Subnets returns the network's subnets in creation order.
func (n *Network) Subnets() []*Subnet { return n.subnets }

// Routers returns the network's routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }
