package psd_test

import (
	"bytes"
	"testing"
	"time"

	"repro/psd"
)

func TestParseIP(t *testing.T) {
	if _, err := psd.ParseIP("10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"} {
		if _, err := psd.ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) accepted", bad)
		}
	}
	a := psd.Addr("192.168.0.1", 80)
	if a.Port != 80 || a.Addr.String() != "192.168.0.1" {
		t.Fatalf("Addr = %v", a)
	}
}

// TestEchoAcrossArchitectures runs the same application code on every
// architecture — the facade-level statement of the compatibility claim.
func TestEchoAcrossArchitectures(t *testing.T) {
	archs := []struct {
		name string
		a    psd.Arch
	}{
		{"decomposed", psd.Decomposed()},
		{"decomposed-ipc", psd.DecomposedIPC()},
		{"inkernel", psd.InKernel()},
		{"server", psd.ServerBased()},
	}
	for _, ac := range archs {
		ac := ac
		t.Run(ac.name, func(t *testing.T) {
			n := psd.New(5)
			hostA := n.Host("a", "10.0.0.1", ac.a)
			hostB := n.Host("b", "10.0.0.2", ac.a)
			srv := hostB.NewApp("echo")
			var got []byte
			n.Spawn("echo", func(p *psd.Thread) {
				fd, err := srv.Socket(p, psd.SockDgram)
				if err != nil {
					t.Error(err)
					return
				}
				if err := srv.Bind(p, fd, psd.SockAddr{Port: 7}); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				nr, from, err := srv.RecvFrom(p, fd, buf, 0)
				if err != nil {
					t.Error(err)
					return
				}
				srv.SendTo(p, fd, buf[:nr], 0, from)
			})
			cli := hostA.NewApp("cli")
			n.Spawn("cli", func(p *psd.Thread) {
				p.Sleep(time.Millisecond)
				fd, _ := cli.Socket(p, psd.SockDgram)
				if _, err := cli.SendTo(p, fd, []byte("hello"), 0, hostB.Addr(7)); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				nr, _, err := cli.RecvFrom(p, fd, buf, 0)
				if err != nil {
					t.Error(err)
					return
				}
				got = buf[:nr]
			})
			if err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("hello")) {
				t.Fatalf("echo = %q", got)
			}
		})
	}
}

func TestServerStats(t *testing.T) {
	n := psd.New(9)
	a := n.Host("a", "10.0.0.1", psd.Decomposed())
	b := n.Host("b", "10.0.0.2", psd.InKernel())
	app := a.NewApp("x")
	n.Spawn("x", func(p *psd.Thread) {
		fd, _ := app.Socket(p, psd.SockDgram)
		app.Bind(p, fd, psd.SockAddr{Port: 100})
		app.Close(p, fd)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	_, migrations, _, _ := a.ServerStats()
	if migrations != 1 {
		t.Fatalf("migrations = %d", migrations)
	}
	// Baseline hosts report zeroes.
	if s, m, r, o := b.ServerStats(); s+m+r+o != 0 {
		t.Fatal("in-kernel host has server stats")
	}
}

func TestLossySimulationStillWorks(t *testing.T) {
	n := psd.New(13)
	n.SetLossRate(0.05)
	a := n.Host("a", "10.0.0.1", psd.Decomposed())
	b := n.Host("b", "10.0.0.2", psd.Decomposed())
	const total = 32 * 1024
	var received int
	srv := b.NewApp("sink")
	n.Spawn("sink", func(p *psd.Thread) {
		ls, _ := srv.Socket(p, psd.SockStream)
		srv.Bind(p, ls, psd.SockAddr{Port: 9})
		srv.Listen(p, ls, 1)
		fd, _, err := srv.Accept(p, ls)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			nr, err := srv.Recv(p, fd, buf, 0)
			if err != nil || nr == 0 {
				return
			}
			received += nr
		}
	})
	cli := a.NewApp("src")
	n.Spawn("src", func(p *psd.Thread) {
		p.Sleep(time.Millisecond)
		fd, _ := cli.Socket(p, psd.SockStream)
		if err := cli.Connect(p, fd, b.Addr(9)); err != nil {
			t.Error(err)
			return
		}
		chunk := make([]byte, 4096)
		for sent := 0; sent < total; {
			nw, err := cli.Send(p, fd, chunk, 0)
			if err != nil {
				t.Error(err)
				return
			}
			sent += nw
		}
		cli.Close(p, fd)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d under loss", received, total)
	}
}
