// Package repro_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark iteration runs a complete deterministic simulation and
// reports the paper's metric (virtual KB/s or virtual milliseconds) via
// b.ReportMetric — wall-clock ns/op measures only the simulator itself.
//
// Regenerate everything at full scale with:
//
//	go run ./cmd/psdbench -all
package repro_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/costs"
)

// benchBytes keeps per-iteration simulations quick; cmd/psdbench runs the
// full 16 MB transfers.
const benchBytes = 4 << 20

func benchName(s string) string {
	r := strings.NewReplacer(" ", "_", "+", "", ".", "", "/", "-")
	return r.Replace(s)
}

// BenchmarkTable2_Throughput regenerates Table 2's throughput column:
// one sub-benchmark per system configuration on both platforms.
func BenchmarkTable2_Throughput(b *testing.B) {
	for _, cfg := range append(bench.DECConfigs(), bench.I486Configs()...) {
		cfg := cfg
		b.Run(benchName(cfg.Platform+"/"+cfg.Name), func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				r := bench.RunTTCP(cfg, cfg.RcvBufKB, benchBytes)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				kbps = r.KBps()
			}
			b.ReportMetric(kbps, "virtKB/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkTable2_Latency regenerates Table 2's latency columns for the
// 1-byte and maximum message sizes (the calibration anchors).
func BenchmarkTable2_Latency(b *testing.B) {
	for _, cfg := range bench.DECConfigs() {
		cfg := cfg
		for _, c := range []struct {
			proto string
			udp   bool
			size  int
		}{
			{"TCP", false, 1}, {"TCP", false, 1460},
			{"UDP", true, 1}, {"UDP", true, 1472},
		} {
			c := c
			b.Run(benchName(fmt.Sprintf("%s/%s/%dB", cfg.Name, c.proto, c.size)), func(b *testing.B) {
				var ms float64
				for i := 0; i < b.N; i++ {
					r := bench.RunProtolat(cfg, c.udp, c.size, 100)
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					ms = r.Ms()
				}
				b.ReportMetric(ms, "virtms/rt")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkTable3_NEWAPI regenerates Table 3: throughput and 1-byte
// latency under the modified (shared-buffer) socket interface.
func BenchmarkTable3_NEWAPI(b *testing.B) {
	for _, cfg := range bench.NewAPIConfigs() {
		cfg := cfg
		b.Run(benchName(cfg.Name), func(b *testing.B) {
			var kbps, udpMS float64
			for i := 0; i < b.N; i++ {
				r := bench.RunTTCP(cfg, cfg.RcvBufKB, benchBytes)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				kbps = r.KBps()
				l := bench.RunProtolat(cfg, true, 1, 100)
				if l.Err != nil {
					b.Fatal(l.Err)
				}
				udpMS = l.Ms()
			}
			b.ReportMetric(kbps, "virtKB/s")
			b.ReportMetric(udpMS, "virtms/rt")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkTable4_Breakdown regenerates the Table 4 per-layer breakdown
// for the three instrumented styles, reporting each cell's one-way total.
func BenchmarkTable4_Breakdown(b *testing.B) {
	decs := bench.DECConfigs()
	styles := map[string]bench.SysConfig{
		"Library": decs[5], "Kernel": decs[0], "Server": decs[2],
	}
	for name, cfg := range styles {
		cfg := cfg
		for _, c := range []struct {
			proto string
			tcp   bool
			size  int
		}{{"UDP", false, 1}, {"UDP", false, 1472}, {"TCP", true, 1}, {"TCP", true, 1460}} {
			c := c
			b.Run(benchName(fmt.Sprintf("%s/%s/%dB", name, c.proto, c.size)), func(b *testing.B) {
				var oneWay time.Duration
				for i := 0; i < b.N; i++ {
					bd := bench.RunBreakdown(cfg, c.tcp, c.size, 100)
					oneWay = bd.SendTotal() + bd.RecvTotal() + bd.Transit
				}
				b.ReportMetric(float64(oneWay)/1000, "virtus/oneway")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkBufferSweep regenerates the paper's receive-buffer methodology
// (§4.1): throughput as a function of buffer size for the library
// configuration.
func BenchmarkBufferSweep(b *testing.B) {
	cfg := bench.DECConfigs()[5]
	for _, kb := range []int{8, 24, 64, 120} {
		kb := kb
		b.Run(fmt.Sprintf("rcvbuf_%dKB", kb), func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				r := bench.RunTTCP(cfg, kb, benchBytes)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				kbps = r.KBps()
			}
			b.ReportMetric(kbps, "virtKB/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblation_NEWAPI compares the standard socket interface with
// the shared-buffer NEWAPI on the same delivery mechanism — the paper's
// §4.2 flexibility demonstration as a single number.
func BenchmarkAblation_NEWAPI(b *testing.B) {
	std := bench.DECConfigs()[5]
	na := bench.NewAPIConfigs()[2]
	var stdKB, naKB float64
	for i := 0; i < b.N; i++ {
		r1 := bench.RunTTCP(std, std.RcvBufKB, benchBytes)
		r2 := bench.RunTTCP(na, na.RcvBufKB, benchBytes)
		if r1.Err != nil || r2.Err != nil {
			b.Fatal(r1.Err, r2.Err)
		}
		stdKB, naKB = r1.KBps(), r2.KBps()
	}
	b.ReportMetric(stdKB, "std_virtKB/s")
	b.ReportMetric(naKB, "newapi_virtKB/s")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkSimulatorOverhead measures the real-world cost of the
// simulation substrate itself: wall-clock time per simulated TCP segment
// carried end to end.
func BenchmarkSimulatorOverhead(b *testing.B) {
	cfg := bench.DECConfigs()[0]
	segs := benchBytes / 1460
	for i := 0; i < b.N; i++ {
		r := bench.RunTTCP(cfg, cfg.RcvBufKB, benchBytes)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(segs), "wallns/segment")
}

var _ = costs.DECKernelMach25 // keep the costs import for documentation links
