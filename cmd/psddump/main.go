// Command psddump is a tcpdump-style monitor for the simulated network:
// it attaches a promiscuous station to the Ethernet segment, decodes
// every frame (Ethernet, ARP, IPv4, UDP, TCP, ICMP), and prints a
// one-line trace with virtual timestamps.
//
// It runs a small canned scenario on the decomposed architecture — an
// ARP exchange, a UDP round trip, and a TCP connect/transfer/close — so
// the whole packet-level story of the paper's design is visible:
// connection establishment driven by the OS servers, data segments
// flowing application-to-application, and the FIN handshake after the
// sessions migrate back.
//
// Usage: go run ./cmd/psddump [-loss 0.02]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
	"repro/psd"
)

func main() {
	loss := flag.Float64("loss", 0, "frame loss rate to inject")
	flag.Parse()

	n := psd.New(11)
	n.SetLossRate(*loss)
	a := n.Host("alpha", "10.0.0.1", psd.Decomposed())
	b := n.Host("beta", "10.0.0.2", psd.Decomposed())

	attachMonitor(n)
	scenario(n, a, b)

	if err := n.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\n[%v] scenario complete\n", n.Now())
}

// attachMonitor adds a promiscuous NIC that decodes and prints frames.
func attachMonitor(n *psd.Network) {
	seg := segmentOf(n)
	mon := seg.Attach(wire.MAC{0xfe, 0xed, 0, 0, 0, 0xff})
	mon.Promisc = true
	mon.Rx = func(f simnet.Frame) {
		fmt.Printf("%12v  %s\n", n.Sim().Now().Duration(), decode(f.Data))
	}
}

// segmentOf digs the segment out of the network. The psd facade does not
// export it (applications have no business on the raw wire), but the
// monitor is exactly the kind of tool that does; Sim access plus one
// accessor keeps this honest.
func segmentOf(n *psd.Network) *simnet.Segment { return n.Segment() }

func decode(frame []byte) string {
	eh, err := wire.UnmarshalEth(frame)
	if err != nil {
		return fmt.Sprintf("malformed frame (%d bytes)", len(frame))
	}
	switch eh.Type {
	case wire.EtherTypeARP:
		p, err := wire.UnmarshalARP(frame[wire.EthHeaderLen:])
		if err != nil {
			return "malformed ARP"
		}
		if p.Op == wire.ARPRequest {
			return fmt.Sprintf("ARP who-has %v tell %v", p.TargetIP, p.SenderIP)
		}
		return fmt.Sprintf("ARP reply %v is-at %v", p.SenderIP, p.SenderMAC)
	case wire.EtherTypeIPv4:
		h, hl, err := wire.UnmarshalIPv4(frame[wire.EthHeaderLen:])
		if err != nil {
			return "malformed IPv4"
		}
		body := frame[wire.EthHeaderLen+hl:]
		if int(h.TotalLen) <= len(frame)-wire.EthHeaderLen {
			body = frame[wire.EthHeaderLen+hl : wire.EthHeaderLen+int(h.TotalLen)]
		}
		if h.IsFragment() {
			return fmt.Sprintf("IP %v > %v: %s fragment off=%d mf=%v len=%d",
				h.Src, h.Dst, wire.ProtoName(h.Proto), int(h.FragOff)*8, h.MoreFragments(), len(body))
		}
		switch h.Proto {
		case wire.ProtoUDP:
			u, err := wire.UnmarshalUDP(body)
			if err != nil {
				return "malformed UDP"
			}
			return fmt.Sprintf("UDP %v:%d > %v:%d len=%d",
				h.Src, u.SrcPort, h.Dst, u.DstPort, int(u.Length)-wire.UDPHeaderLen)
		case wire.ProtoTCP:
			th, hl2, err := wire.UnmarshalTCP(body)
			if err != nil {
				return "malformed TCP"
			}
			payload := len(body) - hl2
			extra := ""
			if th.MSS != 0 {
				extra = fmt.Sprintf(" mss=%d", th.MSS)
			}
			return fmt.Sprintf("TCP %v:%d > %v:%d [%s] seq=%d ack=%d win=%d len=%d%s",
				h.Src, th.SrcPort, h.Dst, th.DstPort,
				wire.FlagString(th.Flags), th.Seq, th.Ack, th.Window, payload, extra)
		case wire.ProtoICMP:
			ih, _, err := wire.UnmarshalICMP(body)
			if err != nil {
				return "malformed ICMP"
			}
			return fmt.Sprintf("ICMP %v > %v type=%d code=%d", h.Src, h.Dst, ih.Type, ih.Code)
		}
		return fmt.Sprintf("IP %v > %v proto=%d", h.Src, h.Dst, h.Proto)
	}
	return fmt.Sprintf("ethertype %#04x (%d bytes)", eh.Type, len(frame))
}

func scenario(n *psd.Network, a, b *psd.Host) {
	srv := b.NewApp("demo-server")
	n.Spawn("demo-server", func(t *sim.Proc) {
		// UDP echo once.
		ufd, _ := srv.Socket(t, psd.SockDgram)
		check(srv.Bind(t, ufd, psd.SockAddr{Port: 7}))
		buf := make([]byte, 512)
		nr, from, err := srv.RecvFrom(t, ufd, buf, 0)
		check(err)
		srv.SendTo(t, ufd, buf[:nr], 0, from)
		srv.Close(t, ufd)

		// Then a small TCP transfer.
		ls, _ := srv.Socket(t, psd.SockStream)
		check(srv.Bind(t, ls, psd.SockAddr{Port: 80}))
		check(srv.Listen(t, ls, 1))
		fd, _, err := srv.Accept(t, ls)
		check(err)
		total := 0
		for {
			nr, err := srv.Recv(t, fd, buf, 0)
			check(err)
			if nr == 0 {
				break
			}
			total += nr
		}
		fmt.Printf("             -- server received %d TCP bytes --\n", total)
		srv.Close(t, fd)
		srv.Close(t, ls)
	})

	cli := a.NewApp("demo-client")
	n.Spawn("demo-client", func(t *sim.Proc) {
		t.Sleep(time.Millisecond)
		ufd, _ := cli.Socket(t, psd.SockDgram)
		_, err := cli.SendTo(t, ufd, []byte("ping"), 0, b.Addr(7))
		check(err)
		buf := make([]byte, 512)
		cli.RecvFrom(t, ufd, buf, 0)
		cli.Close(t, ufd)

		t.Sleep(5 * time.Millisecond)
		fd, _ := cli.Socket(t, psd.SockStream)
		check(cli.Connect(t, fd, b.Addr(80)))
		_, err = cli.Send(t, fd, make([]byte, 4000), 0)
		check(err)
		cli.Close(t, fd)
	})
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
