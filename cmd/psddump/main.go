// Command psddump is a tcpdump-style monitor for the simulated network,
// driven by the deterministic flight recorder: it enables tracing on the
// selected layers, runs a small canned scenario on the decomposed
// architecture — an ARP exchange, a UDP round trip, and a TCP
// connect/transfer/close — and prints every recorded event with virtual
// timestamps. Transmitted frames are decoded inline (Ethernet, ARP,
// IPv4, UDP, TCP, ICMP), so the whole packet-level story of the paper's
// design is visible next to the stack's state transitions and the OS
// server's session migrations.
//
// The same trace can be exported for other tools:
//
//	psddump -pcap out.pcap     # frame stream, openable in Wireshark
//	psddump -trace out.json    # Chrome trace_event, chrome://tracing
//	psddump -stats             # append the final metrics-registry snapshot
//
// Usage: go run ./cmd/psddump [-seed 11] [-loss 0.02] [-layers net,stack,core] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/psd"
)

func main() {
	seed := flag.Int64("seed", 11, "simulation seed")
	loss := flag.Float64("loss", 0, "frame loss rate to inject")
	layers := flag.String("layers", "net,stack,core",
		"comma-separated trace layers (sim,net,filter,stack,core; net is needed for -pcap)")
	pcapPath := flag.String("pcap", "", "write the transmitted-frame stream to this pcap file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	stats := flag.Bool("stats", false, "append the final metrics-registry snapshot after the trace")
	flag.Parse()

	rec, err := run(os.Stdout, *seed, *loss, *layers, *stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *pcapPath != "" {
		export(*pcapPath, rec.WritePcap)
	}
	if *tracePath != "" {
		export(*tracePath, rec.WriteChromeTrace)
	}
}

// export writes one trace rendering to path.
func export(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// run executes the canned scenario with tracing enabled and writes the
// textual trace to w, followed by the final metrics-registry snapshot
// when stats is set. It is the whole program minus flag parsing and
// file output, so tests can run it against a golden file.
func run(w io.Writer, seed int64, loss float64, layerSpec string, stats bool) (*psd.Recorder, error) {
	var layers []psd.TraceLayer
	for _, name := range strings.Split(layerSpec, ",") {
		l, err := trace.ParseLayer(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}

	n := psd.NewConfig(psd.Config{Seed: seed, Trace: layers, Metrics: stats})
	n.SetLossRate(loss)
	a := n.Host("alpha", "10.0.0.1", psd.Decomposed())
	b := n.Host("beta", "10.0.0.2", psd.Decomposed())

	total := scenario(n, a, b)
	if err := n.Run(); err != nil {
		return nil, err
	}

	rec := n.Trace()
	if err := rec.WriteText(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\n[%v] scenario complete: server received %d TCP bytes, %d events recorded\n",
		n.Now(), *total, rec.Len())
	if stats {
		fmt.Fprintf(w, "\nfinal registry snapshot:\n")
		if err := metrics.WriteText(w, *n.MetricsSnapshot()); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// scenario runs a UDP echo and then a small TCP transfer between the two
// hosts; the returned pointer holds the server's received byte count
// once the simulation has run.
func scenario(n *psd.Network, a, b *psd.Host) *int {
	total := new(int)

	srv := b.NewApp("demo-server")
	n.Spawn("demo-server", func(t *sim.Proc) {
		// UDP echo once.
		ufd, _ := srv.Socket(t, psd.SockDgram)
		check(srv.Bind(t, ufd, psd.SockAddr{Port: 7}))
		buf := make([]byte, 512)
		nr, from, err := srv.RecvFrom(t, ufd, buf, 0)
		check(err)
		srv.SendTo(t, ufd, buf[:nr], 0, from)
		srv.Close(t, ufd)

		// Then a small TCP transfer.
		ls, _ := srv.Socket(t, psd.SockStream)
		check(srv.Bind(t, ls, psd.SockAddr{Port: 80}))
		check(srv.Listen(t, ls, 1))
		fd, _, err := srv.Accept(t, ls)
		check(err)
		for {
			nr, err := srv.Recv(t, fd, buf, 0)
			check(err)
			if nr == 0 {
				break
			}
			*total += nr
		}
		srv.Close(t, fd)
		srv.Close(t, ls)
	})

	cli := a.NewApp("demo-client")
	n.Spawn("demo-client", func(t *sim.Proc) {
		t.Sleep(time.Millisecond)
		ufd, _ := cli.Socket(t, psd.SockDgram)
		_, err := cli.SendTo(t, ufd, []byte("ping"), 0, b.Addr(7))
		check(err)
		buf := make([]byte, 512)
		cli.RecvFrom(t, ufd, buf, 0)
		cli.Close(t, ufd)

		t.Sleep(5 * time.Millisecond)
		fd, _ := cli.Socket(t, psd.SockStream)
		check(cli.Connect(t, fd, b.Addr(80)))
		_, err = cli.Send(t, fd, make([]byte, 4000), 0)
		check(err)
		cli.Close(t, fd)
	})
	return total
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
