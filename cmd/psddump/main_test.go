package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/psddump.golden")

// TestGolden runs the canned scenario with the default seed and diffs
// the full textual trace against the checked-in golden file. Any change
// to the packet flow, the stack's state machine, or the trace rendering
// shows up here as a reviewable diff; regenerate with
//
//	go test ./cmd/psddump -run TestGolden -update
func TestGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, 11, 0, "net,stack,core", false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "psddump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	gotLines := strings.Split(buf.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("output differs from %s at line %d:\n  got:  %q\n  want: %q\n(run with -update to regenerate)",
				golden, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s (run with -update to regenerate)", golden)
}

// TestGoldenStable runs the scenario twice in-process and requires
// byte-identical output — the cheap in-process half of the determinism
// guarantee (CI re-runs the suite with -count=2 for the cross-process
// half).
func TestGoldenStable(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if _, err := run(&buf, 11, 0.01, "net,stack,core", false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("two identical psddump runs produced different output")
	}
}

// TestStatsGolden runs the scenario with -stats and diffs the appended
// registry snapshot against its golden file; regenerate with -update.
func TestStatsGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, 11, 0, "net,stack,core", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	marker := "\nfinal registry snapshot:\n"
	i := strings.Index(out, marker)
	if i < 0 {
		t.Fatal("-stats output missing the registry snapshot section")
	}
	snap := out[i+1:]
	golden := filepath.Join("testdata", "psddump-stats.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(snap), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(snap))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if snap != string(want) {
		t.Fatalf("registry snapshot differs from %s (run with -update to regenerate):\n%s", golden, snap)
	}
}

// TestLayerFlagRejected covers the flag-parsing path of run.
func TestLayerFlagRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, 11, 0, "net,bogus", false); err == nil {
		t.Fatal("bad -layers value should be rejected")
	}
}

func TestMainSmoke(t *testing.T) {
	// Exercise the export paths end to end via run + the Write helpers.
	dir := t.TempDir()
	var buf bytes.Buffer
	rec, err := run(&buf, 3, 0, "net", false)
	if err != nil {
		t.Fatal(err)
	}
	pcapPath := filepath.Join(dir, "out.pcap")
	f, err := os.Create(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WritePcap(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(pcapPath)
	if err != nil || st.Size() <= 24 {
		t.Fatalf("pcap not written: %v, size %d", err, st.Size())
	}
}
