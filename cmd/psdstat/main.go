// Command psdstat is a netstat/ss-style monitor for the simulated
// network, driven by the deterministic metrics registry: it enables
// metrics, runs a small canned scenario on the selected architecture —
// a UDP service, a TCP listener with one established connection
// mid-transfer, and one already-closed connection parked in TIME_WAIT —
// pauses virtual time, and reads the live state back out of the
// registry and the per-stack socket tables.
//
//	psdstat                # per-socket table (netstat/ss)
//	psdstat -i             # per-interface counters (netstat -i)
//	psdstat -s             # per-protocol summary (netstat -s)
//	psdstat -json          # the full registry snapshot as JSON
//	psdstat -prom          # the same snapshot in Prometheus text format
//
// Every rendering is byte-stable for a given seed and architecture.
//
// Usage: go run ./cmd/psdstat [-seed 11] [-arch decomposed] [-i|-s|-json|-prom]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/psd"
)

func main() {
	seed := flag.Int64("seed", 11, "simulation seed")
	arch := flag.String("arch", "decomposed", "architecture: decomposed, inkernel, or server")
	ifaces := flag.Bool("i", false, "show per-interface counters")
	summary := flag.Bool("s", false, "show per-protocol summaries")
	jsonOut := flag.Bool("json", false, "dump the full registry snapshot as JSON")
	promOut := flag.Bool("prom", false, "dump the full registry snapshot in Prometheus text format")
	flag.Parse()

	mode := "table"
	switch {
	case *ifaces:
		mode = "ifaces"
	case *summary:
		mode = "summary"
	case *jsonOut:
		mode = "json"
	case *promOut:
		mode = "prom"
	}
	if err := run(os.Stdout, *seed, *arch, mode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// archByName maps the -arch flag to a psd architecture.
func archByName(name string) (psd.Arch, error) {
	switch name {
	case "decomposed":
		return psd.Decomposed(), nil
	case "inkernel":
		return psd.InKernel(), nil
	case "server":
		return psd.ServerBased(), nil
	}
	return psd.Arch{}, fmt.Errorf("psdstat: unknown architecture %q (decomposed, inkernel, server)", name)
}

// run executes the canned scenario with metrics enabled and writes the
// selected rendering to w. It is the whole program minus flag parsing,
// so tests can run it against golden files.
func run(w io.Writer, seed int64, archName, mode string) error {
	arch, err := archByName(archName)
	if err != nil {
		return err
	}
	n := psd.NewConfig(psd.Config{Seed: seed, Metrics: true})
	a := n.Host("alpha", "10.0.0.1", arch)
	b := n.Host("beta", "10.0.0.2", arch)
	g := n.Host("gamma", "10.0.0.3", arch)
	scenario(n, a, b, g)

	// Advance to a quiesce point mid-workload: the transfer connection is
	// established with data queued, the short-lived connection sits in
	// TIME_WAIT, and the listener and UDP service are still up.
	if err := n.RunFor(2 * time.Second); err != nil {
		return err
	}
	snap := n.MetricsSnapshot()

	switch mode {
	case "table":
		return writeSocketTable(w, n, []*psd.Host{a, b, g})
	case "ifaces":
		return writeIfaceTable(w, snap, []*psd.Host{a, b, g})
	case "summary":
		return writeSummary(w, snap, []*psd.Host{a, b, g})
	case "json":
		return metrics.WriteJSON(w, *snap)
	case "prom":
		return metrics.WriteProm(w, *snap)
	}
	return fmt.Errorf("psdstat: unknown mode %q", mode)
}

// scenario stands up the socket population psdstat reads: on beta a UDP
// service, a TCP listener, and one accepted connection with unread data
// queued; on alpha the transfer's client and one short-lived connection
// that has already closed (TIME_WAIT on the closing side); on gamma a
// data-plane VIP fronting a second service on beta, so the conntrack,
// NAT, and balancer counters tick.
func scenario(n *psd.Network, a, b, g *psd.Host) {
	srv := b.NewApp("stat-server")
	n.Spawn("stat-server", func(t *sim.Proc) {
		ufd, _ := srv.Socket(t, psd.SockDgram)
		check(srv.Bind(t, ufd, psd.SockAddr{Port: 7}))

		ls, _ := srv.Socket(t, psd.SockStream)
		check(srv.Bind(t, ls, psd.SockAddr{Port: 80}))
		check(srv.Listen(t, ls, 4))

		// First connection: drain to EOF and close. The client closed
		// first, so its side parks in TIME_WAIT.
		fd, _, err := srv.Accept(t, ls)
		check(err)
		buf := make([]byte, 1024)
		for {
			nr, err := srv.Recv(t, fd, buf, 0)
			check(err)
			if nr == 0 {
				break
			}
		}
		check(srv.Close(t, fd))

		// Second connection: accept and go idle, leaving the transfer's
		// bytes visible in the receive queue.
		_, _, err = srv.Accept(t, ls)
		check(err)
		t.Sleep(time.Hour)
	})

	// Chain-interface leg: a splice-echo service on beta. The server
	// never reads the bytes — it splices the connection into itself, so
	// the echo is pure reference motion and the splice counters tick.
	// The client peeks each reply chunk with a selective 16-byte range,
	// ticking the zero-copy-receive and selective-copy counters.
	const echoBytes = 512
	echo := b.NewApp("splice-echo")
	n.Spawn("splice-echo", func(t *sim.Proc) {
		ls, _ := echo.Socket(t, psd.SockStream)
		check(echo.Bind(t, ls, psd.SockAddr{Port: 81}))
		check(echo.Listen(t, ls, 4))
		fd, _, err := echo.Accept(t, ls)
		check(err)
		ch, ok := psd.ChainOps(echo)
		if !ok {
			panic("psdstat: architecture lacks the chain interface")
		}
		if _, err := ch.Splice(t, fd, fd, echoBytes); err != nil {
			panic(err)
		}
		check(echo.Close(t, fd))
		check(echo.Close(t, ls))
	})
	chainCli := a.NewApp("chain-client")
	n.Spawn("chain-client", func(t *sim.Proc) {
		t.Sleep(2 * time.Millisecond)
		fd, _ := chainCli.Socket(t, psd.SockStream)
		check(chainCli.Connect(t, fd, b.Addr(81)))
		ch, ok := psd.ChainOps(chainCli)
		if !ok {
			panic("psdstat: architecture lacks the chain interface")
		}
		if _, err := ch.SendChain(t, fd, psd.ChainCopy(make([]byte, echoBytes)), 0); err != nil {
			panic(err)
		}
		for got := 0; got < echoBytes; {
			v, err := ch.RecvPeek(t, fd, 0, []psd.Range{{Off: 0, Len: 16}})
			check(err)
			nr := v.Chain.Len()
			check(ch.RecvRelease(t, fd, nr))
			v.Chain.Release()
			got += nr
		}
		check(chainCli.Close(t, fd))
	})

	// Data-plane leg: gamma fronts a VIP for a service on beta. The
	// plane proxy-ARPs the VIP address, conntracks the connection, and
	// full-NATs every segment through to beta, so the dataplane summary
	// counters and the ct/lb gauges have live values at the quiesce
	// point. The connection stays established (both ends sleep).
	const vipBytes = 256
	vsrv := b.NewApp("vip-server")
	n.Spawn("vip-server", func(t *sim.Proc) {
		ls, _ := vsrv.Socket(t, psd.SockStream)
		check(vsrv.Bind(t, ls, psd.SockAddr{Port: 82}))
		check(vsrv.Listen(t, ls, 1))
		fd, _, err := vsrv.Accept(t, ls)
		check(err)
		buf := make([]byte, vipBytes)
		for got := 0; got < vipBytes; {
			nr, err := vsrv.Recv(t, fd, buf, 0)
			check(err)
			got += nr
		}
		t.Sleep(time.Hour)
	})
	if _, err := g.InstallVIP("10.0.0.200", 82, psd.BackendSpec{Host: b, Port: 82}); err != nil {
		panic(err)
	}
	vcli := a.NewApp("vip-client")
	n.Spawn("vip-client", func(t *sim.Proc) {
		t.Sleep(3 * time.Millisecond)
		fd, _ := vcli.Socket(t, psd.SockStream)
		check(vcli.Connect(t, fd, psd.Addr("10.0.0.200", 82)))
		_, err := vcli.Send(t, fd, make([]byte, vipBytes), 0)
		check(err)
		t.Sleep(time.Hour)
	})

	cli := a.NewApp("stat-client")
	n.Spawn("stat-client", func(t *sim.Proc) {
		t.Sleep(time.Millisecond)

		// Short-lived connection: client closes first -> TIME_WAIT.
		fd, _ := cli.Socket(t, psd.SockStream)
		check(cli.Connect(t, fd, b.Addr(80)))
		_, err := cli.Send(t, fd, []byte("hello"), 0)
		check(err)
		check(cli.Close(t, fd))

		// Mid-transfer connection: stays established with data queued at
		// the idle server.
		fd2, _ := cli.Socket(t, psd.SockStream)
		check(cli.Connect(t, fd2, b.Addr(80)))
		_, err = cli.Send(t, fd2, make([]byte, 2048), 0)
		check(err)
		t.Sleep(time.Hour)
	})
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

// writeSocketTable renders the netstat/ss view: one sorted row per live
// socket, per host.
func writeSocketTable(w io.Writer, n *psd.Network, hosts []*psd.Host) error {
	fmt.Fprintf(w, "psdstat at %v\n", n.Now())
	for _, h := range hosts {
		fmt.Fprintf(w, "\nHost %s:\n", h.Name())
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "Proto\tRecv-Q\tSend-Q\tLocal Address\tForeign Address\tState\tSpliced\tZC-Rx\tSelCopy\tStack")
		for _, row := range h.Netstat() {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s:%d\t%s:%d\t%s\t%d\t%d\t%d\t%s\n",
				row.Proto, row.RecvQ, row.SendQ,
				row.Local.IP, row.Local.Port,
				row.Remote.IP, row.Remote.Port,
				row.State, row.SplicedBytes, row.ZeroCopyRx, row.SelectiveCopy,
				row.Stack)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// writeIfaceTable renders the netstat -i view from the registry.
func writeIfaceTable(w io.Writer, snap *psd.MetricsSnapshot, hosts []*psd.Host) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "Iface\tTX-Frames\tTX-Bytes\tRX-Frames\tRX-Bytes\tEndpoints")
	get := func(name string) int64 {
		it, _ := snap.Get(name)
		return it.Value
	}
	for _, h := range hosts {
		p := "host." + h.Name() + "."
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n", h.Name(),
			get(p+"nic.tx_frames"), get(p+"nic.tx_bytes"),
			get(p+"nic.rx_frames"), get(p+"nic.rx_bytes"),
			get(p+"kern.endpoints"))
	}
	return tw.Flush()
}

// writeSummary renders the netstat -s view: per-protocol counters summed
// across every stack in the network, plus the wire's own accounting.
func writeSummary(w io.Writer, snap *psd.MetricsSnapshot, hosts []*psd.Host) error {
	sum := snap.Sum
	fmt.Fprintf(w, "ip:\n")
	fmt.Fprintf(w, "    %d packets received\n", sum(".ip_in"))
	fmt.Fprintf(w, "    %d packets sent\n", sum(".ip_out"))
	fmt.Fprintf(w, "    %d fragments created\n", sum(".ip_frags_out"))
	fmt.Fprintf(w, "    %d datagrams reassembled\n", sum(".ip_reasm_ok"))
	fmt.Fprintf(w, "    %d bad header checksums\n", sum(".checksum_errors_ip"))
	fmt.Fprintf(w, "tcp:\n")
	fmt.Fprintf(w, "    %d segments received\n", sum(".tcp_in"))
	fmt.Fprintf(w, "    %d segments sent\n", sum(".tcp_out"))
	fmt.Fprintf(w, "    %d segments retransmitted\n", sum(".tcp_rexmit")+sum(".tcp_fast_rexmit"))
	fmt.Fprintf(w, "    %d duplicate acks received\n", sum(".tcp_dup_acks"))
	fmt.Fprintf(w, "    %d bad segment checksums\n", sum(".checksum_errors_tcp"))
	fmt.Fprintf(w, "udp:\n")
	fmt.Fprintf(w, "    %d datagrams received\n", sum(".udp_in"))
	fmt.Fprintf(w, "    %d datagrams sent\n", sum(".udp_out"))
	fmt.Fprintf(w, "    %d datagrams to unknown ports\n", sum(".udp_no_port"))
	fmt.Fprintf(w, "    %d bad datagram checksums\n", sum(".checksum_errors_udp"))
	fmt.Fprintf(w, "wire:\n")
	fmt.Fprintf(w, "    %d frames delivered\n", sum("net.frames_sent"))
	fmt.Fprintf(w, "    %d frames dropped\n", sum(".drops_loss")+sum(".drops_down")+sum(".partition_drops"))
	fmt.Fprintf(w, "sockets:\n")
	fmt.Fprintf(w, "    %d bytes copied at the socket layer\n", sum(".sock_copied_bytes"))
	fmt.Fprintf(w, "    %d bytes moved by reference\n", sum(".sock_aliased_bytes"))
	fmt.Fprintf(w, "    %d splice operations moving %d bytes\n", sum(".splice_ops"), sum(".splice_bytes"))
	fmt.Fprintf(w, "    %d bytes received zero-copy\n", sum(".zc_rx_bytes"))
	fmt.Fprintf(w, "    %d bytes selectively materialized\n", sum(".selective_copy_bytes"))
	fmt.Fprintf(w, "dataplane:\n")
	fmt.Fprintf(w, "    %d frames inspected\n", sum(".dataplane.rx_frames"))
	fmt.Fprintf(w, "    %d frames rewritten\n", sum(".dataplane.rewrites"))
	fmt.Fprintf(w, "    %d hairpin forwards\n", sum(".dataplane.hairpins"))
	fmt.Fprintf(w, "    %d frames dropped by policy\n", sum(".dataplane.drops"))
	fmt.Fprintf(w, "    %d proxy-ARP replies\n", sum(".dataplane.arp_replies"))
	fmt.Fprintf(w, "    %d conntrack flows created (%d live)\n", sum(".dataplane.ct.created"), sum(".dataplane.ct.flows"))
	fmt.Fprintf(w, "    %d conntrack flows expired\n", sum(".dataplane.ct.expired"))
	fmt.Fprintf(w, "    %d balancer connections admitted\n", sum(".dataplane.lb.conns"))
	fmt.Fprintf(w, "    %d balancer connections re-homed, %d reset\n", sum(".dataplane.lb.rehomed"), sum(".dataplane.lb.resets"))
	fmt.Fprintf(w, "core:\n")
	fmt.Fprintf(w, "    %d sessions created\n", sum(".core.sessions_made"))
	fmt.Fprintf(w, "    %d sessions migrated to applications\n", sum(".core.migrations"))
	fmt.Fprintf(w, "    %d connections established\n", sum(".core.conn_setup"))
	fmt.Fprintf(w, "    %d orphaned sessions aborted\n", sum(".core.orphans_aborted"))
	return nil
}
