package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata goldens")

// TestGolden runs the canned scenario on the decomposed architecture and
// diffs every rendering mode against its checked-in golden file. Any
// change to the socket tables, the counter set, or the renderings shows
// up as a reviewable diff; regenerate with
//
//	go test ./cmd/psdstat -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, mode := range []string{"table", "ifaces", "summary", "json", "prom"} {
		t.Run(mode, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, 11, "decomposed", mode); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "psdstat-"+mode+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if bytes.Equal(buf.Bytes(), want) {
				return
			}
			gotLines := strings.Split(buf.String(), "\n")
			wantLines := strings.Split(string(want), "\n")
			for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
				var g, w string
				if i < len(gotLines) {
					g = gotLines[i]
				}
				if i < len(wantLines) {
					w = wantLines[i]
				}
				if g != w {
					t.Fatalf("output differs from %s at line %d:\n  got:  %q\n  want: %q\n(run with -update to regenerate)",
						golden, i+1, g, w)
				}
			}
			t.Fatalf("output differs from %s (run with -update to regenerate)", golden)
		})
	}
}

// TestSnapshotStable runs the scenario twice per architecture and
// requires byte-identical -json output — the in-process half of the
// determinism guarantee (CI re-runs the suite with -count=2 for the
// cross-process half).
func TestSnapshotStable(t *testing.T) {
	for _, arch := range []string{"decomposed", "inkernel", "server"} {
		t.Run(arch, func(t *testing.T) {
			render := func() []byte {
				var buf bytes.Buffer
				if err := run(&buf, 11, arch, "json"); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := render(), render()
			if !bytes.Equal(a, b) {
				t.Fatal("two identical psdstat runs produced different snapshots")
			}
		})
	}
}

// TestSocketTableContents spot-checks the netstat view on every
// architecture: the scenario must leave a LISTEN socket, an ESTABLISHED
// pair, a TIME_WAIT remnant, and the UDP service visible.
func TestSocketTableContents(t *testing.T) {
	for _, arch := range []string{"decomposed", "inkernel", "server"} {
		t.Run(arch, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, 11, arch, "table"); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range []string{"LISTEN", "ESTABLISHED", "TIME_WAIT", "udp"} {
				if !strings.Contains(out, want) {
					t.Errorf("socket table missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestBadArchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 11, "bogus", "table"); err == nil {
		t.Fatal("bad -arch value should be rejected")
	}
}
