package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/psd"
)

// ScenarioReport is one BENCH_scenarios.json entry: the full suite run
// across every architecture under one label.
type ScenarioReport struct {
	Label   string                `json:"label"`
	Date    string                `json:"date"`
	Seed    int64                 `json:"seed"`
	Results []*psd.ScenarioResult `json:"results"`
}

// runScenarios executes every named scenario on every architecture,
// prints the verdict table (and SLO details for failures), and writes a
// BENCH_scenarios-style JSON entry to path ("-" for stdout, "" for
// none). A failed SLO makes the whole run return an error so CI gates
// on the exit status.
func runScenarios(path, label string, seed int64) error {
	if label == "" {
		label = "psdbench"
	}
	rep := ScenarioReport{
		Label: label,
		Date:  time.Now().UTC().Format("2006-01-02"),
		Seed:  seed,
	}

	fmt.Printf("Scenario suite (seed %d)\n", seed)
	fmt.Printf("%-14s %-12s %5s %4s %12s %12s %9s %7s %7s  %s\n",
		"scenario", "arch", "reqs", "errs", "p50", "p99", "conn-p99", "drops", "rexmit", "verdict")
	failed := 0
	for _, name := range psd.ScenarioNames() {
		for _, a := range archFlavors {
			res, err := psd.RunScenario(psd.ScenarioConfig{
				Name: name, Seed: seed, Arch: a.New(), ArchName: a.Name,
			})
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, res)
			verdict := "pass"
			if !res.Passed {
				verdict = "FAIL"
				failed++
			}
			fmt.Printf("%-14s %-12s %5d %4d %12s %12s %9s %7d %7d  %s\n",
				res.Name, res.Arch, res.Requests, res.Errors,
				time.Duration(res.ReqP50Ns), time.Duration(res.ReqP99Ns),
				time.Duration(res.ConnectP99Ns),
				res.NetDrops+res.RouterDrops, res.TCPRexmits, verdict)
			if !res.Passed {
				for _, r := range res.SLO {
					fmt.Printf("    %s\n", r.String())
				}
			}
		}
	}

	if path != "" {
		var out io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]ScenarioReport{rep}); err != nil {
			return err
		}
		if path != "-" {
			fmt.Printf("wrote scenario report to %s\n", path)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario cell(s) failed their SLOs", failed)
	}
	return nil
}
