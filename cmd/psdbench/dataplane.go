package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

// runDataplane measures the programmable-data-plane suite (throughput
// and latency versus filter-chain length on every architecture column,
// plus the L4 load-balancer churn gate), prints the tables, and writes
// a BENCH_dataplane-style JSON entry to path ("-" for stdout, "" for
// none).
func runDataplane(path, label string) error {
	results, err := bench.RunDataplaneSuite()
	if err != nil {
		return err
	}
	if label == "" {
		label = "psdbench"
	}

	fmt.Println("Dataplane suite: ttcp vs chain length")
	fmt.Printf("%-38s %6s %7s %9s\n", "configuration", "rules", "instrs", "KB/s")
	for _, c := range results {
		if c.Workload != "ttcp-chain" {
			continue
		}
		fmt.Printf("%-38s %6d %7d %9.1f\n", c.Config, c.ChainRules, c.ChainInstrs, c.KBps)
	}
	fmt.Println("\nDataplane suite: protolat vs chain length")
	fmt.Printf("%-38s %6s %7s %9s\n", "configuration", "rules", "instrs", "rtt-ms")
	for _, c := range results {
		if c.Workload != "protolat-chain" {
			continue
		}
		fmt.Printf("%-38s %6d %7d %9.3f\n", c.Config, c.ChainRules, c.ChainInstrs, c.LatencyMs)
	}
	fmt.Println("\nDataplane suite: VIP churn (conservation-gated)")
	fmt.Printf("%-14s %6s %7s %7s %8s %7s %6s %5s\n",
		"arch", "conns", "served", "failed", "rehomed", "resets", "flows", "snat")
	for _, c := range results {
		if c.Workload != "vip-churn" {
			continue
		}
		fmt.Printf("%-14s %6d %7d %7d %8d %7d %6d %5d\n",
			c.Config, c.Conns, c.Served, c.Failed, c.Rehomed, c.Resets, c.FlowsLeft, c.SNATLeft)
	}

	if path == "" {
		return nil
	}
	rep := bench.DataplaneReport{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: results,
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteDataplaneJSON(out, rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote dataplane report to %s\n", path)
	}
	return nil
}
