package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

// runOffload measures the NIC-offload comparison suite (tcp-steady at
// several offered loads, the splice proxy, and connection churn, each
// across all four architecture columns), prints the tables, and writes
// a BENCH_offload-style JSON entry to path ("-" for stdout, "" for
// none).
func runOffload(path, label string) error {
	results, err := bench.RunOffloadSuite()
	if err != nil {
		return err
	}
	if label == "" {
		label = "psdbench"
	}

	fmt.Println("Offload suite: tcp-steady")
	fmt.Printf("%-38s %6s %8s %6s %6s %7s %9s %9s %12s %12s\n",
		"configuration", "Mb/s", "KB/s", "wire", "deliv", "wakeup", "wake/seg", "coalesce", "sw-csum-B", "nic-csum-B")
	for _, c := range results {
		if c.Workload != "tcp-steady" {
			continue
		}
		fmt.Printf("%-38s %6.0f %8.1f %6d %6d %7d %9.3f %9.2f %12d %12d\n",
			c.Config, c.OfferedMbps, c.KBps, c.WireFrames, c.Deliveries, c.Wakeups,
			c.WakeupsPerSegment, c.CoalesceRatio, c.SwChecksumBytes, c.OffloadCsumBytes)
	}
	fmt.Println("\nOffload suite: proxy (splice)")
	fmt.Printf("%-38s %8s %10s\n", "configuration", "KB/s", "copies/B")
	for _, c := range results {
		if c.Workload != "proxy-splice" {
			continue
		}
		fmt.Printf("%-38s %8.1f %10.3f\n", c.Config, c.KBps, c.CopiesPerByte)
	}
	fmt.Println("\nOffload suite: churn")
	fmt.Printf("%-14s %6s %7s %7s %9s %12s\n", "arch", "conns", "wire", "wakeup", "wake/seg", "sw-csum-B")
	for _, c := range results {
		if c.Workload != "churn" {
			continue
		}
		fmt.Printf("%-14s %6d %7d %7d %9.3f %12d\n",
			c.Config, c.Conns, c.WireFrames, c.Wakeups, c.WakeupsPerSegment, c.SwChecksumBytes)
	}

	if path == "" {
		return nil
	}
	rep := bench.OffloadReport{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: results,
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteOffloadJSON(out, rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote offload report to %s\n", path)
	}
	return nil
}
