package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/psd"
)

// The scale suite measures the simulator's own scheduler at internet
// scale: the RunCity districted workload at growing host counts, run on
// the classic single event loop (shards=0, the baseline) and on shard
// groups of increasing width. Every point must pass the conservation
// laws; the headline number is sim_per_real — virtual seconds simulated
// per wall-clock second — whose trajectory across host counts is what
// BENCH_scale.json records.

// ScalePoint is one measured (workload size, scheduler shape) cell.
type ScalePoint struct {
	Arch           string  `json:"arch,omitempty"`
	Hosts          int     `json:"hosts"`
	Districts      int     `json:"districts"`
	Conns          int     `json:"conns"`
	Shards         int     `json:"shards"` // 0 = classic single loop
	SingleThreaded bool    `json:"single_threaded,omitempty"`
	VirtSeconds    float64 `json:"virt_seconds"`
	RealSeconds    float64 `json:"real_seconds"`
	SimPerReal     float64 `json:"sim_per_real"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Windows        uint64  `json:"windows,omitempty"`
	// AllocsPerWindow is heap allocations per synchronization window
	// (sharded cells only) — the window-loop efficiency gauge. Cells run
	// in fresh child processes, so the malloc counter sees one run.
	AllocsPerWindow float64 `json:"allocs_per_window,omitempty"`
}

// ScaleReport is one BENCH_scale.json entry.
type ScaleReport struct {
	Label  string       `json:"label"`
	Date   string       `json:"date"`
	Seed   int64        `json:"seed"`
	Points []ScalePoint `json:"points"`
}

// scaleCity sizes a city to roughly the requested host count: 100
// hosts per district (10 echo servers, 90 clients), one connection per
// client, a quarter of them crossing districts over the trunks.
func scaleCity(seed int64, hosts, shards int, single bool, arch psd.Arch) psd.CityConfig {
	districts := hosts / 100
	if districts < 1 {
		districts = 1
	}
	return psd.CityConfig{
		Seed:               seed,
		Districts:          districts,
		ServersPerDistrict: 10,
		ClientsPerDistrict: 90,
		ConnsPerClient:     1,
		CrossEvery:         4,
		OrphanEvery:        16,
		MsgBytes:           256,
		Arch:               arch,
		Shards:             shards,
		SingleThreaded:     single,
		TrunkProp:          time.Millisecond,
	}
}

// pointSpec is the child-process work order for one cell.
type pointSpec struct {
	Seed   int64  `json:"seed"`
	Arch   string `json:"arch"`
	Hosts  int    `json:"hosts"`
	Shards int    `json:"shards"`
	Single bool   `json:"single"`
}

// scalePointFlag is the internal child mode: measure one cell and print
// the ScalePoint as JSON. Each cell runs in its own process because a
// finished simulation's parked daemon goroutines are pinned until
// process exit — a shared process would tax every later cell's GC with
// the previous cells' heaps and make the comparison order-dependent.
var scalePointFlag = flag.String("scale-point", "",
	"internal: measure one scale cell (JSON spec) and print the point as JSON")

// runScalePointCmd is the -scale-point child entry.
func runScalePointCmd(spec string) error {
	var ps pointSpec
	if err := json.Unmarshal([]byte(spec), &ps); err != nil {
		return fmt.Errorf("scale-point: %w", err)
	}
	if ps.Arch == "" {
		ps.Arch = "decomposed"
	}
	p, err := runScalePoint(ps.Seed, ps.Arch, ps.Hosts, ps.Shards, ps.Single)
	if err != nil {
		return err
	}
	return json.NewEncoder(os.Stdout).Encode(p)
}

// spawnScalePoint measures one cell in a fresh child process.
func spawnScalePoint(seed int64, archName string, hosts, shards int, single bool) (ScalePoint, error) {
	exe, err := os.Executable()
	if err != nil {
		return ScalePoint{}, err
	}
	spec, _ := json.Marshal(pointSpec{Seed: seed, Arch: archName, Hosts: hosts, Shards: shards, Single: single})
	cmd := exec.Command(exe, "-scale-point", string(spec))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale: hosts=%d shards=%d: %w", hosts, shards, err)
	}
	var p ScalePoint
	if err := json.Unmarshal(out, &p); err != nil {
		return ScalePoint{}, fmt.Errorf("scale: hosts=%d shards=%d: bad child output: %w", hosts, shards, err)
	}
	return p, nil
}

// runScalePoint executes one cell and folds the run into a point.
func runScalePoint(seed int64, archName string, hosts, shards int, single bool) (ScalePoint, error) {
	arch, err := archByName(archName)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale: %w", err)
	}
	cfg := scaleCity(seed, hosts, shards, single, arch())
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	rep, err := psd.RunCity(cfg)
	real := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale: hosts=%d shards=%d: %w", hosts, shards, err)
	}
	if err := rep.Check(); err != nil {
		return ScalePoint{}, fmt.Errorf("scale: hosts=%d shards=%d: %w", hosts, shards, err)
	}
	// Virtual time is identical across scheduler shapes for a given
	// workload (that is the determinism guarantee); real time is the
	// variable under test.
	virt := float64(rep.Snapshot.At) / float64(time.Second)
	p := ScalePoint{
		Arch:           archName,
		Hosts:          rep.Hosts,
		Districts:      rep.Districts,
		Conns:          rep.ConnsPlan,
		Shards:         shards,
		SingleThreaded: single,
		VirtSeconds:    virt,
		RealSeconds:    real.Seconds(),
		SimPerReal:     virt / real.Seconds(),
		Events:         rep.DispatchedTotal,
		EventsPerSec:   float64(rep.DispatchedTotal) / real.Seconds(),
		Windows:        rep.Windows,
	}
	if rep.Windows > 0 {
		p.AllocsPerWindow = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(rep.Windows)
	}
	return p, nil
}

// runScale sweeps host counts x scheduler shapes, prints a table, and
// writes a BENCH_scale-style JSON entry to path ("-" for stdout, "" for
// none). The sweep fails if any conservation law fails, or if no
// multi-shard run at the largest host count beats the classic
// single-loop baseline on sim_per_real.
func runScale(path, label, archName string, seed int64, maxHosts int, shardCounts []int) error {
	if label == "" {
		label = "psdbench"
	}
	if archName == "" {
		archName = "decomposed"
	}
	if _, err := archByName(archName); err != nil {
		return fmt.Errorf("scale: %w", err)
	}
	hostSteps := []int{2500, 10000, 40000, 100000}
	var hosts []int
	for _, h := range hostSteps {
		if h <= maxHosts {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		hosts = []int{maxHosts}
	}

	rep := ScaleReport{Label: label, Date: time.Now().UTC().Format("2006-01-02"), Seed: seed}
	fmt.Printf("Scale sweep (arch %s)\n", archName)
	fmt.Printf("%8s %10s %7s %8s %10s %10s %12s %9s %11s\n",
		"hosts", "conns", "shards", "virt_s", "real_s", "sim/real", "events", "windows", "allocs/win")
	var baseline, bestMulti float64
	for _, h := range hosts {
		for _, k := range shardCounts {
			p, err := spawnScalePoint(seed, archName, h, k, false)
			if err != nil {
				return err
			}
			if h == hosts[len(hosts)-1] {
				// The largest host count is the gating row: measure it
				// twice and keep the faster run, so single-run timing
				// noise cannot flip the speedup verdict. The simulation
				// itself is deterministic — only wall time varies.
				p2, err := spawnScalePoint(seed, archName, h, k, false)
				if err != nil {
					return err
				}
				if p2.SimPerReal > p.SimPerReal {
					p = p2
				}
			}
			rep.Points = append(rep.Points, p)
			mode := "classic"
			if k > 0 {
				mode = fmt.Sprintf("%d", k)
			}
			apw := "-"
			if p.AllocsPerWindow > 0 {
				apw = fmt.Sprintf("%.0f", p.AllocsPerWindow)
			}
			fmt.Printf("%8d %10d %7s %8.1f %10.2f %10.1f %12d %9d %11s\n",
				p.Hosts, p.Conns, mode, p.VirtSeconds, p.RealSeconds, p.SimPerReal, p.Events, p.Windows, apw)
			if h == hosts[len(hosts)-1] {
				if k == 0 {
					baseline = p.SimPerReal
				} else if p.SimPerReal > bestMulti {
					bestMulti = p.SimPerReal
				}
			}
		}
	}
	if baseline > 0 && bestMulti > 0 && bestMulti <= baseline {
		return fmt.Errorf("scale: no multi-shard run beat the single-loop baseline (%.1f vs %.1f sim/real)",
			bestMulti, baseline)
	}
	if baseline > 0 && bestMulti > 0 {
		fmt.Printf("multi-shard best %.1f sim/real vs single-loop %.1f (%+.0f%%)\n",
			bestMulti, baseline, 100*(bestMulti/baseline-1))
	}

	if path == "" {
		return nil
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote scale report to %s\n", path)
	}
	return nil
}
