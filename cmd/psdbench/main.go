// Command psdbench regenerates the evaluation of "Protocol Service
// Decomposition for High-Performance Networking" (Maeda & Bershad,
// SOSP '93): Table 2 (throughput and latency for 12 system
// configurations on two platforms), Table 3 (the NEWAPI shared-buffer
// interface), Table 4 (the per-layer latency breakdown), the
// receive-buffer sweep methodology, and a set of ablations.
//
// Usage:
//
//	psdbench -all               # everything (takes a few minutes)
//	psdbench -table 2           # just Table 2
//	psdbench -table 4           # just the breakdown
//	psdbench -sweep             # buffer-size sweeps
//	psdbench -ablations         # design-choice ablations
//	psdbench -rounds N -mb M    # adjust effort
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (2, 3, or 4)")
	config := flag.String("config", "", "measure a single named configuration (see -list)")
	list := flag.Bool("list", false, "list configuration names")
	sweep := flag.Bool("sweep", false, "run receive-buffer sweeps")
	ablations := flag.Bool("ablations", false, "run design-choice ablations")
	all := flag.Bool("all", false, "run everything")
	rounds := flag.Int("rounds", 300, "round trips per latency cell")
	mb := flag.Int("mb", 16, "ttcp transfer size in MB")
	loss := flag.Float64("loss", 0, "frame drop probability on every link")
	dup := flag.Float64("dup", 0, "frame duplication probability")
	corrupt := flag.Float64("corrupt", 0, "single-bit corruption probability")
	reorder := flag.Float64("reorder", 0, "frame reordering probability")
	reorderBy := flag.Duration("reorderby", 0, "extra delay given to reordered frames (default 2ms)")
	delay := flag.Duration("delay", 0, "fixed extra delay on every frame")
	jitter := flag.Duration("jitter", 0, "uniform random delay added per frame")
	faultPlan := flag.String("faultplan", "", "fault plan (DSL, see EXPERIMENTS.md), e.g. '@2s partition A|B for=500ms'")
	traceDir := flag.String("trace", "", "record every run on the flight recorder and dump the slowest run's trace (text, pcap, Chrome JSON) into this directory")
	jsonOut := flag.String("json", "", "run the wall-clock hot-path suite and write BENCH_hotpath-style JSON to this file (\"-\" for stdout)")
	metricsOut := flag.String("metrics", "", "run the metrics-registry digest suite and write BENCH_metrics-style JSON to this file (\"-\" for stdout)")
	proxyOut := flag.String("proxy", "", "run the proxy forwarding suite (bsd vs chain vs splice on every architecture column) and write BENCH_proxy-style JSON to this file (\"-\" for stdout)")
	proxyMB := flag.Int("proxy-mb", 4, "bytes forwarded per -proxy cell, in MB")
	offloadRun := flag.Bool("offload", false, "run the NIC-offload comparison suite (tcp-steady at several offered loads, splice proxy, churn on all four architecture columns)")
	offloadOut := flag.String("offload-json", "", "with -offload, also write a BENCH_offload-style JSON report to this file (\"-\" for stdout)")
	dataplaneRun := flag.Bool("dataplane", false, "run the programmable-data-plane suite (throughput/latency vs filter-chain length on all four architecture columns, plus the conservation-gated L4 load-balancer churn workload)")
	dataplaneOut := flag.String("dataplane-json", "", "with -dataplane, also write a BENCH_dataplane-style JSON report to this file (\"-\" for stdout)")
	scenarios := flag.Bool("scenarios", false, "run the internet-scale scenario suite (all scenarios x all architectures) and gate on its SLOs")
	scenariosOut := flag.String("scenarios-json", "", "with -scenarios, also write a BENCH_scenarios-style JSON report to this file (\"-\" for stdout)")
	scenarioSeed := flag.Int64("scenario-seed", 1, "seed for -scenarios traffic generators")
	scale := flag.Bool("scale", false, "run the sharded-simulation scale sweep (RunCity at growing host counts, classic loop vs shard groups) and gate on conservation laws plus the multi-shard speedup")
	scaleArch := flag.String("scale-arch", "decomposed", "architecture for the -scale city workload (decomposed, inkernel, server, offload)")
	scaleOut := flag.String("scale-json", "", "with -scale, also write a BENCH_scale-style JSON report to this file (\"-\" for stdout)")
	scaleHosts := flag.Int("scale-hosts", 10000, "largest host count for the -scale sweep")
	scaleSeed := flag.Int64("scale-seed", 1, "seed for the -scale city workload")
	shards := flag.Int("shards", -1, "with -scale, sweep only the classic loop plus this shard count (default: classic, 1, 4, and 8 shards)")
	benchLabel := flag.String("label", "", "label stored in the -json report (default: current date)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	if *scalePointFlag != "" {
		if err := runScalePointCmd(*scalePointFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *traceDir != "" {
		bench.EnableTrace(0)
	}

	for _, p := range []struct {
		name string
		v    float64
	}{{"loss", *loss}, {"dup", *dup}, {"corrupt", *corrupt}, {"reorder", *reorder}} {
		if p.v < 0 || p.v > 1 {
			fmt.Fprintf(os.Stderr, "-%s=%g: want probability in [0,1]\n", p.name, p.v)
			os.Exit(1)
		}
	}
	fcfg := bench.FaultConfig{
		Rates: fault.Rates{
			Drop: *loss, Dup: *dup, Corrupt: *corrupt,
			Reorder: *reorder, ReorderBy: *reorderBy,
			Delay: *delay, Jitter: *jitter,
		},
		Plan: *faultPlan,
	}
	if err := bench.SetFaults(fcfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opt := bench.Options{LatRounds: *rounds, TotalBytes: *mb << 20}
	ran := false

	if *list {
		ran = true
		all := append(append(bench.DECConfigs(), bench.I486Configs()...), bench.NewAPIConfigs()...)
		all = append(all, bench.OffloadConfig())
		for _, c := range all {
			fmt.Printf("%-24s %s\n", c.Platform, c.Name)
		}
	}
	if *config != "" {
		ran = true
		cfg, err := bench.FindConfig(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		row := bench.RunTable2Row(cfg, opt)
		fmt.Println(bench.FormatTable2("Configuration: "+cfg.Name, []bench.Table2Row{row}))
	}

	if *all || *table == 2 {
		ran = true
		rows := bench.RunTable2(opt)
		fmt.Println(bench.FormatTable2(
			"Table 2: TCP throughput and TCP/UDP round-trip latency", rows))
	}
	if *all || *table == 3 {
		ran = true
		rows := bench.RunTable3(opt)
		fmt.Println(bench.FormatTable2(
			"Table 3: the modified socket interface (NEWAPI)", rows))
	}
	if *all || *table == 4 {
		ran = true
		runTable4(opt)
	}
	if *all || *sweep {
		ran = true
		for _, cfg := range bench.DECConfigs() {
			pts := bench.SweepBuffers(cfg, opt.TotalBytes/4, nil)
			fmt.Println(bench.FormatSweep(cfg, pts))
		}
	}
	if *all || *ablations {
		ran = true
		fmt.Println(bench.FormatAblations(bench.RunAblations(opt)))
	}
	if *jsonOut != "" {
		ran = true
		if err := runHotpath(*jsonOut, *benchLabel, opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		ran = true
		if err := runMetrics(*metricsOut, *benchLabel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *proxyOut != "" {
		ran = true
		if err := runProxy(*proxyOut, *benchLabel, *proxyMB<<20); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *all || *offloadRun {
		ran = true
		if err := runOffload(*offloadOut, *benchLabel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *all || *dataplaneRun {
		ran = true
		if err := runDataplane(*dataplaneOut, *benchLabel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *scenarios {
		ran = true
		if err := runScenarios(*scenariosOut, *benchLabel, *scenarioSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *scale {
		ran = true
		shardCounts := []int{0, 1, 4, 8}
		if *shards >= 0 {
			shardCounts = []int{0}
			if *shards > 0 {
				shardCounts = append(shardCounts, *shards)
			}
		}
		if err := runScale(*scaleOut, *benchLabel, *scaleArch, *scaleSeed, *scaleHosts, shardCounts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if bench.FaultsActive() {
		if rep := bench.FaultReport(); rep != "" {
			fmt.Println(rep)
		}
	}
	if *traceDir != "" {
		msg, err := bench.DumpSlowest(*traceDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(msg)
	}
}

// headlineConfig is the configuration the registry digest runs against:
// the paper's headline Library-SHM-IPF system.
func headlineConfig() bench.SysConfig { return bench.HeadlineConfig() }

// runHotpath measures the wall-clock hot path and writes the JSON
// report, including the registry digest of the headline configuration.
func runHotpath(path, label string, opt Options) error {
	results, err := bench.RunHotpath(0, 0)
	if err != nil {
		return err
	}
	metrics, err := bench.RunMetricsSuite(headlineConfig())
	if err != nil {
		return err
	}
	if label == "" {
		label = "psdbench"
	}
	rep := bench.HotpathReport{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: results,
		Metrics: metrics,
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteHotpathJSON(out, rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote hot-path report to %s\n", path)
	}
	return nil
}

// runMetrics runs only the registry digest suite and writes the
// BENCH_metrics-style JSON entry.
func runMetrics(path, label string) error {
	cfg := headlineConfig()
	results, err := bench.RunMetricsSuite(cfg)
	if err != nil {
		return err
	}
	if label == "" {
		label = "psdbench"
	}
	rep := bench.MetricsReport{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Config:  cfg.Name,
		Results: results,
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteMetricsJSON(out, rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote metrics report to %s\n", path)
	}
	return nil
}

// runProxy measures the socket-to-socket forwarding workload — the
// flat-buffer loop against the chain and splice paths — on the three
// reference architectures, and writes the BENCH_proxy-style report.
func runProxy(path, label string, totalBytes int) error {
	results, err := bench.RunProxySuite(totalBytes)
	if err != nil {
		return err
	}
	if label == "" {
		label = "psdbench"
	}
	rep := bench.ProxyReport{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: results,
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := bench.WriteProxyJSON(out, rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote proxy report to %s\n", path)
	}
	return nil
}

func runTable4(opt Options) {
	decs := bench.DECConfigs()
	styles := []bench.SysConfig{decs[5], decs[0], decs[2]} // Library, Kernel, Server

	var tcpCells, udpCells []bench.Breakdown
	for _, cfg := range styles {
		for _, size := range []int{1, 1460} {
			tcpCells = append(tcpCells, bench.RunBreakdown(cfg, true, size, opt.LatRounds))
		}
	}
	for _, cfg := range styles {
		for _, size := range []int{1, 1472} {
			udpCells = append(udpCells, bench.RunBreakdown(cfg, false, size, opt.LatRounds))
		}
	}
	fmt.Println(bench.FormatTable4("Table 4 (TCP): per-layer latency, µs per one-way message", tcpCells))
	fmt.Println(bench.FormatTable4("Table 4 (UDP): per-layer latency, µs per one-way message", udpCells))
}

// Options aliases bench.Options for the local helper signature.
type Options = bench.Options
