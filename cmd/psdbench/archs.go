package main

import "repro/psd"

// archFlavors is the shared architecture registry: every subcommand
// that iterates architectures (-scenarios) or selects one by name
// (-scale) resolves through psd.ArchFlavors, so a new column appears in
// every suite at once. The bench-harness equivalent is bench.Columns(),
// which the default suite and -proxy use.
var archFlavors = psd.ArchFlavors()

// archByName resolves a registry entry, listing the valid names on a
// miss so flag errors are self-describing.
func archByName(name string) (func() psd.Arch, error) {
	f, err := psd.FlavorByName(name)
	if err != nil {
		return nil, err
	}
	return f.New, nil
}
